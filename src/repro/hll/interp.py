"""Reference interpreter for Mini-C over a flat byte memory.

This is the semantic ground truth for the compiler: pointers are real
byte addresses, ``int`` arithmetic wraps at 32 bits, ``>>`` is
arithmetic, division truncates toward zero (C semantics), and ``char``
accesses move single (unsigned) bytes.  Differential tests require every
compiled target to produce exactly what this interpreter produces.

It also counts executed HLL operations (assignments, calls, loop
iterations, ifs, indexing) - the dynamic half of the paper's Table 1
methodology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.common.bitops import to_signed, to_unsigned
from repro.common.memory import CONSOLE_ADDRESS, Memory
from repro.errors import InterpreterError
from repro.hll import ast
from repro.hll.sema import CheckedProgram, Symbol, analyze
from repro.hll.parser import parse_program

GLOBALS_BASE = 0x1000
WORD = 4


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: int):
        self.value = value


@dataclass
class InterpResult:
    """Outcome of running a Mini-C program."""

    value: int
    op_counts: Counter = field(default_factory=Counter)
    memory: Memory | None = None


def _wrap(value: int) -> int:
    """Normalise to the signed 32-bit representative."""
    return to_signed(to_unsigned(value))


def _c_div(a: int, b: int) -> int:
    """C division: truncate toward zero."""
    if b == 0:
        raise InterpreterError("division by zero")
    quotient = abs(a) // abs(b)
    return _wrap(-quotient if (a < 0) != (b < 0) else quotient)


def _c_mod(a: int, b: int) -> int:
    """C remainder: sign follows the dividend."""
    return _wrap(a - _c_div(a, b) * b)


class Interpreter:
    """Evaluate a checked Mini-C program.

    Args:
        checked: output of :func:`repro.hll.sema.analyze`.
        memory_size: flat memory for globals, arrays, and escaped locals.
        max_ops: fuel limit (guards differential tests against
            accidental infinite loops).
    """

    def __init__(self, checked: CheckedProgram, memory_size: int = 1 << 20,
                 max_ops: int = 10_000_000, max_call_depth: int = 900):
        import sys

        self.checked = checked
        self.memory = Memory(size=memory_size)
        self.max_ops = max_ops
        self.fuel = max_ops
        self.max_call_depth = max_call_depth
        self.call_depth = 0
        # each Mini-C call costs ~10 Python frames; keep headroom
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 20 * max_call_depth))
        self.op_counts: Counter = Counter()
        self.global_addresses: dict[int, int] = {}  # symbol uid -> address
        self.stack_pointer = memory_size
        self._allocate_globals()

    # -- layout -----------------------------------------------------------

    def _allocate_globals(self) -> None:
        address = GLOBALS_BASE
        for gvar in self.checked.node.globals:
            symbol = gvar.symbol
            size = symbol.type.size
            if size >= WORD or symbol.type.base == "int" or symbol.type.pointer:
                address = (address + WORD - 1) // WORD * WORD
            self.global_addresses[symbol.uid] = address
            self._initialise(address, gvar.type, gvar.init, gvar.init_list, gvar.init_string)
            address += size

    def _initialise(self, address: int, var_type: ast.Type, scalar: int,
                    init_list: list[int] | None, init_string: str | None) -> None:
        if init_string is not None:
            for offset, char in enumerate(init_string):
                self.memory.store_byte(address + offset, ord(char), count=False)
            self.memory.store_byte(address + len(init_string), 0, count=False)
        elif init_list is not None:
            elem = var_type.element_size
            for offset, value in enumerate(init_list):
                self._store(address + offset * elem, elem, value)
        elif not var_type.is_array and scalar:
            self._store(address, var_type.size, scalar)

    def _store(self, address: int, size: int, value: int) -> None:
        if size == 1:
            self.memory.store_byte(address, to_unsigned(value) & 0xFF, count=False)
        else:
            self.memory.store_word(address, to_unsigned(value), count=False)

    def _load(self, address: int, size: int) -> int:
        if size == 1:
            return self.memory.load_byte(address, count=False)
        return to_signed(self.memory.load_word(address, count=False))

    # -- running -------------------------------------------------------------

    def run(self, entry: str = "main", args: list[int] | None = None) -> InterpResult:
        value = self.call(entry, args or [])
        return InterpResult(value=value, op_counts=self.op_counts, memory=self.memory)

    def call(self, name: str, args: list[int]) -> int:
        info = self.checked.functions.get(name)
        if info is None and name == "putchar":
            value = args[0] & 0xFF
            self.memory.store_byte(CONSOLE_ADDRESS, value, count=False)
            return value
        if info is None:
            raise InterpreterError(f"no function {name!r}")
        if len(args) != len(info.params):
            raise InterpreterError(f"{name} expects {len(info.params)} args")
        self.op_counts["call"] += 1
        self._burn()
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise InterpreterError(f"call depth exceeded ({self.max_call_depth})")
        saved_sp = self.stack_pointer
        env: dict[int, int] = {}
        addresses: dict[int, int] = {}
        for symbol, value in zip(info.params, args):
            env[symbol.uid] = _wrap(value)
        # Pre-allocate memory homes for arrays and escaped scalars.
        for symbol in info.locals + info.params:
            if symbol.in_memory:
                size = (symbol.type.size + WORD - 1) // WORD * WORD
                self.stack_pointer -= size
                addresses[symbol.uid] = self.stack_pointer
                if symbol.kind == "param":
                    self._store(addresses[symbol.uid], symbol.type.size, env[symbol.uid])
        frame = _Frame(env, addresses)
        try:
            self._exec_block(info.node.body, frame)
            result = 0
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self.call_depth -= 1
        self.stack_pointer = saved_sp
        return _wrap(result)

    def _burn(self, amount: int = 1) -> None:
        self.fuel -= amount
        if self.fuel <= 0:
            raise InterpreterError(f"operation limit exceeded ({self.max_ops})")

    # -- statements -------------------------------------------------------------

    def _exec_block(self, block: ast.Block, frame: "_Frame") -> None:
        for stmt in block.body:
            self._exec(stmt, frame)

    def _exec(self, stmt: ast.Stmt, frame: "_Frame") -> None:
        self._burn()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.Declaration):
            self._exec_declaration(stmt, frame)
        elif isinstance(stmt, ast.Assign):
            self.op_counts["assign"] += 1
            self._assign(stmt.target, self._eval(stmt.value, frame), frame)
        elif isinstance(stmt, ast.If):
            self.op_counts["if"] += 1
            if self._eval(stmt.cond, frame):
                self._exec(stmt.then, frame)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, frame)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, frame)
        elif isinstance(stmt, ast.DoWhile):
            self._exec_do_while(stmt, frame)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ast.Return):
            self.op_counts["return"] += 1
            value = self._eval(stmt.value, frame) if stmt.value is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        else:  # pragma: no cover
            raise InterpreterError(f"unknown statement {type(stmt).__name__}")

    def _exec_declaration(self, decl: ast.Declaration, frame: "_Frame") -> None:
        symbol = decl.symbol
        if symbol.in_memory and symbol.uid not in frame.addresses:
            raise InterpreterError(f"missing memory home for {symbol.name}", decl.line)
        if decl.init_string is not None or decl.init_list is not None:
            address = frame.addresses[symbol.uid]
            self._initialise(address, symbol.type, 0, decl.init_list, decl.init_string)
        elif decl.init is not None:
            self.op_counts["assign"] += 1
            value = self._eval(decl.init, frame)
            self._write_symbol(symbol, value, frame)
        elif not symbol.in_memory:
            frame.env[symbol.uid] = 0
        else:
            # zero the memory home (arrays start zeroed like C statics here)
            address = frame.addresses[symbol.uid]
            for offset in range(0, symbol.type.size, 1):
                self.memory.store_byte(address + offset, 0, count=False)

    def _exec_while(self, stmt: ast.While, frame: "_Frame") -> None:
        while self._eval(stmt.cond, frame):
            self.op_counts["loop"] += 1
            self._burn()
            try:
                self._exec(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_do_while(self, stmt: ast.DoWhile, frame: "_Frame") -> None:
        while True:
            self.op_counts["loop"] += 1
            self._burn()
            try:
                self._exec(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if not self._eval(stmt.cond, frame):
                break

    def _exec_for(self, stmt: ast.For, frame: "_Frame") -> None:
        if stmt.init is not None:
            self._exec(stmt.init, frame)
        while stmt.cond is None or self._eval(stmt.cond, frame):
            self.op_counts["loop"] += 1
            self._burn()
            try:
                self._exec(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._exec(stmt.step, frame)

    # -- lvalues --------------------------------------------------------------------

    def _assign(self, target: ast.Expr, value: int, frame: "_Frame") -> None:
        if isinstance(target, ast.Name):
            self._write_symbol(target.symbol, value, frame)
            return
        address, size = self._lvalue_address(target, frame)
        self._store(address, size, value)

    def _write_symbol(self, symbol: Symbol, value: int, frame: "_Frame") -> None:
        if symbol.in_memory:
            address = self._symbol_address(symbol, frame)
            self._store(address, symbol.type.size, value)
        else:
            frame.env[symbol.uid] = _wrap(value)

    def _symbol_address(self, symbol: Symbol, frame: "_Frame") -> int:
        if symbol.kind == "global":
            return self.global_addresses[symbol.uid]
        return frame.addresses[symbol.uid]

    def _lvalue_address(self, expr: ast.Expr, frame: "_Frame") -> tuple[int, int]:
        """Address and access size (bytes) of an lvalue expression."""
        if isinstance(expr, ast.Name):
            symbol = expr.symbol
            return self._symbol_address(symbol, frame), symbol.type.size
        if isinstance(expr, ast.Index):
            self.op_counts["index"] += 1
            base_type = expr.array.type
            base = self._eval_address_or_pointer(expr.array, frame)
            index = self._eval(expr.index, frame)
            elem = base_type.element_size
            return base + index * elem, elem
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointee = expr.operand.type.decay().element()
            return self._eval(expr.operand, frame), pointee.size
        raise InterpreterError("not an lvalue", expr.line)

    def _eval_address_or_pointer(self, expr: ast.Expr, frame: "_Frame") -> int:
        """Arrays evaluate to their address (decay); pointers to their value."""
        if expr.type is not None and expr.type.is_array:
            if isinstance(expr, ast.Name):
                return self._symbol_address(expr.symbol, frame)
            if isinstance(expr, ast.StrLit):
                return self.global_addresses[expr.symbol.uid]
            address, __ = self._lvalue_address(expr, frame)
            return address
        return self._eval(expr, frame)

    # -- expressions ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, frame: "_Frame") -> int:
        self._burn()
        if isinstance(expr, ast.IntLit):
            return _wrap(expr.value)
        if isinstance(expr, ast.StrLit):
            return self.global_addresses[expr.symbol.uid]
        if isinstance(expr, ast.Name):
            symbol = expr.symbol
            if symbol.type.is_array:
                return self._symbol_address(symbol, frame)
            if symbol.in_memory:
                return self._load(self._symbol_address(symbol, frame), symbol.type.size)
            return frame.env[symbol.uid]
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, frame)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.Index):
            address, size = self._lvalue_address(expr, frame)
            return self._load(address, size)
        if isinstance(expr, ast.Call):
            args = [self._eval(arg, frame) for arg in expr.args]
            # Arrays passed as arguments decay to addresses.
            args = [
                self._eval_address_or_pointer(arg_expr, frame)
                if arg_expr.type is not None and arg_expr.type.is_array
                else value
                for arg_expr, value in zip(expr.args, args)
            ]
            return self.call(expr.func, args)
        raise InterpreterError(f"unknown expression {type(expr).__name__}", expr.line)

    def _eval_unary(self, expr: ast.Unary, frame: "_Frame") -> int:
        if expr.op == "&":
            address, __ = self._lvalue_address(expr.operand, frame)
            return address
        if expr.op == "*":
            address, size = self._lvalue_address(expr, frame)
            return self._load(address, size)
        value = self._eval(expr.operand, frame)
        if expr.op == "-":
            return _wrap(-value)
        if expr.op == "!":
            return int(value == 0)
        if expr.op == "~":
            return _wrap(~value)
        raise InterpreterError(f"unknown unary {expr.op!r}", expr.line)

    def _eval_binary(self, expr: ast.Binary, frame: "_Frame") -> int:
        op = expr.op
        self.op_counts["binop"] += 1
        if op == "&&":
            return int(bool(self._eval_operand(expr.left, frame))
                       and bool(self._eval_operand(expr.right, frame)))
        if op == "||":
            return int(bool(self._eval_operand(expr.left, frame))
                       or bool(self._eval_operand(expr.right, frame)))
        left = self._eval_operand(expr.left, frame)
        right = self._eval_operand(expr.right, frame)
        left_type = expr.left.type.decay() if expr.left.type else ast.INT
        right_type = expr.right.type.decay() if expr.right.type else ast.INT
        if op == "+":
            if left_type.pointer > 0:
                return _wrap(left + right * left_type.element_size)
            if right_type.pointer > 0:
                return _wrap(right + left * right_type.element_size)
            return _wrap(left + right)
        if op == "-":
            if left_type.pointer > 0 and right_type.pointer > 0:
                return _wrap((left - right) // left_type.element_size)
            if left_type.pointer > 0:
                return _wrap(left - right * left_type.element_size)
            return _wrap(left - right)
        if op == "*":
            return _wrap(left * right)
        if op == "/":
            return _c_div(left, right)
        if op == "%":
            return _c_mod(left, right)
        if op == "<<":
            return _wrap(left << (right & 31))
        if op == ">>":
            return _wrap(left >> (right & 31))  # arithmetic: left is signed
        if op == "&":
            return _wrap(left & right)
        if op == "|":
            return _wrap(left | right)
        if op == "^":
            return _wrap(left ^ right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        # pointer comparisons compare addresses; both sides are plain ints here
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        raise InterpreterError(f"unknown operator {op!r}", expr.line)

    def _eval_operand(self, expr: ast.Expr, frame: "_Frame") -> int:
        """Evaluate an operand with array decay."""
        if expr.type is not None and expr.type.is_array:
            return self._eval_address_or_pointer(expr, frame)
        return self._eval(expr, frame)


@dataclass
class _Frame:
    env: dict[int, int]
    addresses: dict[int, int]


def run_program(source: str, entry: str = "main", args: list[int] | None = None,
                max_ops: int = 10_000_000) -> InterpResult:
    """Parse, analyze, and interpret Mini-C *source* in one call."""
    checked = analyze(parse_program(source))
    return Interpreter(checked, max_ops=max_ops).run(entry, args)
