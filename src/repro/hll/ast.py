"""Mini-C abstract syntax tree.

Every node carries its source line for diagnostics.  Types are described
by :class:`Type`, which covers exactly the Mini-C type universe: ``int``,
``char``, pointers to either, and fixed-size arrays of either.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types ---------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A Mini-C type: base ('int' or 'char'), pointer depth, array size.

    ``array_size`` is None for scalars/pointers; arrays always have a
    compile-time size.  ``int`` is 4 bytes, ``char`` 1 byte.
    """

    base: str = "int"
    pointer: int = 0
    array_size: int | None = None

    @property
    def is_array(self) -> bool:
        return self.array_size is not None

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0 and not self.is_array

    def element(self) -> "Type":
        """Type of an element of this array / pointee of this pointer."""
        if self.is_array:
            return Type(self.base, self.pointer)
        if self.pointer > 0:
            return Type(self.base, self.pointer - 1)
        raise ValueError(f"{self} has no element type")

    def decay(self) -> "Type":
        """Array-to-pointer decay (C semantics)."""
        if self.is_array:
            return Type(self.base, self.pointer + 1)
        return self

    @property
    def element_size(self) -> int:
        """Size in bytes of one element (for indexing arithmetic)."""
        elem = self.element()
        return elem.size

    @property
    def size(self) -> int:
        """Storage size in bytes of a value of this type."""
        if self.is_array:
            return self.array_size * Type(self.base, self.pointer).size
        if self.pointer > 0:
            return 4
        return 4 if self.base == "int" else 1

    def __str__(self) -> str:
        text = self.base + "*" * self.pointer
        if self.is_array:
            text += f"[{self.array_size}]"
        return text


INT = Type("int")
CHAR = Type("char")


# -- expressions ------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    type: Type | None = field(default=None, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~', '*', '&'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""  # + - * / % << >> < <= > >= == != & | ^ && ||
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


@dataclass
class Call(Expr):
    func: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements ---------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Declaration(Stmt):
    name: str = ""
    decl_type: Type = field(default_factory=Type)
    init: Expr | None = None
    init_list: list[int] | None = None  # array initializer {1, 2, 3}
    init_string: str | None = None  # char array initializer "..."


@dataclass
class Assign(Stmt):
    target: Expr | None = None  # Name, Index, or Unary('*')
    value: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  # Assign or Declaration or None
    cond: Expr | None = None
    step: Stmt | None = None  # Assign or ExprStmt
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


# -- top level ------------------------------------------------------------------


@dataclass
class Param:
    name: str
    type: Type
    line: int = 0


@dataclass
class Function:
    name: str
    params: list[Param]
    return_type: Type
    body: Block
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    type: Type
    init: int = 0
    init_list: list[int] | None = None
    init_string: str | None = None
    line: int = 0


@dataclass
class ProgramAst:
    """A whole Mini-C translation unit."""

    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
