"""Semantic analysis for Mini-C: name resolution and type checking.

Annotates the AST in place:

* every :class:`~repro.hll.ast.Name` and
  :class:`~repro.hll.ast.Declaration` gets a ``symbol`` attribute
  pointing at its :class:`Symbol`;
* every expression gets its ``type`` filled in;
* symbols that have their address taken are flagged ``escapes`` (the
  compiler must keep them in memory, not a register).

Returns a :class:`CheckedProgram` with per-function symbol inventories.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.hll import ast
from repro.hll.ast import INT, Type

_symbol_ids = itertools.count()


@dataclass
class Symbol:
    """One declared variable (global, parameter, or local)."""

    name: str
    type: Type
    kind: str  # 'global' | 'param' | 'local'
    line: int = 0
    escapes: bool = False
    uid: int = field(default_factory=lambda: next(_symbol_ids))

    @property
    def in_memory(self) -> bool:
        """Must live in memory: globals and arrays always, locals when
        address-taken (registers have no address)."""
        return self.kind == "global" or self.type.is_array or self.escapes


@dataclass
class FunctionInfo:
    """Symbol inventory for one function."""

    node: ast.Function
    params: list[Symbol] = field(default_factory=list)
    locals: list[Symbol] = field(default_factory=list)  # includes block-scoped


@dataclass
class CheckedProgram:
    """A type-checked translation unit."""

    node: ast.ProgramAst
    globals: dict[str, Symbol] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        if symbol.name in self.names:
            raise SemanticError(f"redeclaration of {symbol.name!r}", symbol.line)
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    def __init__(self, program: ast.ProgramAst):
        self.program = program
        self.checked = CheckedProgram(program)
        self.current: FunctionInfo | None = None
        self.loop_depth = 0
        self._string_pool: dict[str, Symbol] = {}

    def run(self) -> CheckedProgram:
        top = _Scope()
        for gvar in self.program.globals:
            symbol = Symbol(gvar.name, gvar.type, "global", gvar.line)
            top.declare(symbol)
            self.checked.globals[gvar.name] = symbol
            gvar.symbol = symbol
            self._check_initializer(gvar.type, gvar.init_list, gvar.init_string, gvar.line)
        names = set(self.checked.globals)
        for func in self.program.functions:
            if func.name in names:
                raise SemanticError(f"redeclaration of {func.name!r}", func.line)
            names.add(func.name)
            self.checked.functions[func.name] = FunctionInfo(func)
        for func in self.program.functions:
            self._check_function(func, top)
        return self.checked

    # -- functions ----------------------------------------------------------

    def _check_function(self, func: ast.Function, top: _Scope) -> None:
        info = self.checked.functions[func.name]
        self.current = info
        scope = _Scope(top)
        for param in func.params:
            if param.type.is_array:
                raise SemanticError("array parameters must decay to pointers", param.line)
            symbol = Symbol(param.name, param.type, "param", param.line)
            scope.declare(symbol)
            info.params.append(symbol)
            param.symbol = symbol
        # C scoping: parameters share the function body's top-level scope,
        # so a top-level local may not redeclare a parameter name.
        for stmt in func.body.body:
            self._check_stmt(stmt, scope)
        self.current = None

    def _check_block(self, block: ast.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    # -- statements -----------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.Declaration):
            self._check_declaration(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond, scope)
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self.loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(f"{kind} outside a loop", stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, scope)
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _check_declaration(self, decl: ast.Declaration, scope: _Scope) -> None:
        symbol = Symbol(decl.name, decl.decl_type, "local", decl.line)
        scope.declare(symbol)
        decl.symbol = symbol
        assert self.current is not None
        self.current.locals.append(symbol)
        self._check_initializer(decl.decl_type, decl.init_list, decl.init_string, decl.line)
        if decl.init is not None:
            if decl.decl_type.is_array:
                raise SemanticError("cannot initialize an array from a scalar", decl.line)
            value_type = self._expr(decl.init, scope)
            self._check_assignable(decl.decl_type, value_type, decl.line)

    def _check_initializer(
        self, decl_type: Type, init_list: list[int] | None,
        init_string: str | None, line: int,
    ) -> None:
        if init_list is not None:
            if not decl_type.is_array:
                raise SemanticError("brace initializer on a non-array", line)
            if len(init_list) > decl_type.array_size:
                raise SemanticError("too many initializer values", line)
        if init_string is not None:
            if not (decl_type.is_array and decl_type.base == "char" and decl_type.pointer == 0):
                raise SemanticError("string initializer requires a char array", line)
            if len(init_string) + 1 > decl_type.array_size:
                raise SemanticError("string initializer does not fit", line)

    def _check_assign(self, stmt: ast.Assign, scope: _Scope) -> None:
        target_type = self._expr(stmt.target, scope)
        if not self._is_lvalue(stmt.target):
            raise SemanticError("assignment target is not an lvalue", stmt.line)
        if target_type.is_array:
            raise SemanticError("cannot assign to an array", stmt.line)
        value_type = self._expr(stmt.value, scope)
        self._check_assignable(target_type, value_type, stmt.line)

    def _check_assignable(self, target: Type, value: Type, line: int) -> None:
        value = value.decay()
        if target.pointer > 0:
            if value.pointer == 0 and value.base in ("int", "char"):
                return  # allow integer-to-pointer (0 and computed addresses)
            if value.pointer == target.pointer and value.base == target.base:
                return
            raise SemanticError(f"cannot assign {value} to {target}", line)
        if value.pointer > 0:
            raise SemanticError(f"cannot assign pointer {value} to {target}", line)

    @staticmethod
    def _is_lvalue(expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Name):
            return True
        if isinstance(expr, ast.Index):
            return True
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return True
        return False

    # -- expressions -------------------------------------------------------------

    def _expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        expr_type = self._expr_inner(expr, scope)
        expr.type = expr_type
        return expr_type

    def _expr_inner(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.StrLit):
            return self._intern_string(expr)
        if isinstance(expr, ast.Name):
            symbol = scope.lookup(expr.ident)
            if symbol is None:
                raise SemanticError(f"undeclared identifier {expr.ident!r}", expr.line)
            expr.symbol = symbol
            return symbol.type
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Index):
            base_type = self._expr(expr.array, scope)
            if not (base_type.is_array or base_type.pointer > 0):
                raise SemanticError(f"cannot index a {base_type}", expr.line)
            self._expr(expr.index, scope)
            return base_type.element()
        if isinstance(expr, ast.Call):
            return self._call(expr, scope)
        raise SemanticError(f"unknown expression {type(expr).__name__}", expr.line)

    def _intern_string(self, expr: ast.StrLit) -> Type:
        """A string literal in expression position becomes an anonymous
        global ``char`` array (the classic rodata pool); its type is the
        array type, which decays to ``char*`` at use sites."""
        text = expr.value
        symbol = self._string_pool.get(text)
        if symbol is None:
            name = f"__str_{len(self._string_pool)}"
            str_type = Type("char", 0, len(text) + 1)
            symbol = Symbol(name, str_type, "global")
            self._string_pool[text] = symbol
            self.checked.globals[name] = symbol
            gvar = ast.GlobalVar(name, str_type, init_string=text, line=expr.line)
            gvar.symbol = symbol
            self.checked.node.globals.append(gvar)
        expr.symbol = symbol
        return symbol.type

    def _unary(self, expr: ast.Unary, scope: _Scope) -> Type:
        operand_type = self._expr(expr.operand, scope)
        if expr.op == "*":
            decayed = operand_type.decay()
            if decayed.pointer == 0:
                raise SemanticError(f"cannot dereference a {operand_type}", expr.line)
            return decayed.element()
        if expr.op == "&":
            if not self._is_lvalue(expr.operand):
                raise SemanticError("'&' needs an lvalue", expr.line)
            self._mark_escape(expr.operand)
            return Type(operand_type.base, operand_type.pointer + 1)
        if operand_type.decay().pointer > 0 and expr.op != "!":
            raise SemanticError(f"unary {expr.op!r} on a pointer", expr.line)
        return INT

    def _mark_escape(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name):
            expr.symbol.escapes = True
        elif isinstance(expr, ast.Index):
            # &a[i]: the array is already in memory, nothing extra escapes
            pass
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            pass

    def _binary(self, expr: ast.Binary, scope: _Scope) -> Type:
        left = self._expr(expr.left, scope).decay()
        right = self._expr(expr.right, scope).decay()
        op = expr.op
        if op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
            return INT
        if op == "+":
            if left.pointer > 0 and right.pointer > 0:
                raise SemanticError("cannot add two pointers", expr.line)
            if left.pointer > 0:
                return left
            if right.pointer > 0:
                return right
            return INT
        if op == "-":
            if left.pointer > 0 and right.pointer > 0:
                if left != right:
                    raise SemanticError("pointer difference needs matching types", expr.line)
                return INT
            if left.pointer > 0:
                return left
            if right.pointer > 0:
                raise SemanticError("cannot subtract a pointer from an integer", expr.line)
            return INT
        # * / % << >> & | ^ require integers
        if left.pointer > 0 or right.pointer > 0:
            raise SemanticError(f"operator {op!r} needs integer operands", expr.line)
        return INT

    def _call(self, expr: ast.Call, scope: _Scope) -> Type:
        info = self.checked.functions.get(expr.func)
        if info is None and expr.func == "putchar":
            # builtin console output: putchar(int) -> int
            if len(expr.args) != 1:
                raise SemanticError("putchar expects one argument", expr.line)
            arg_type = self._expr(expr.args[0], scope).decay()
            if arg_type.pointer > 0:
                raise SemanticError("putchar expects an integer", expr.line)
            return INT
        if info is None and expr.func == "mmio_read":
            # builtin volatile word load: mmio_read(int addr) -> int
            if len(expr.args) != 1:
                raise SemanticError("mmio_read expects one argument", expr.line)
            arg_type = self._expr(expr.args[0], scope).decay()
            if arg_type.pointer > 0:
                raise SemanticError("mmio_read expects an integer address", expr.line)
            return INT
        if info is None and expr.func == "mmio_write":
            # builtin volatile word store: mmio_write(int addr, int value) -> int
            if len(expr.args) != 2:
                raise SemanticError("mmio_write expects two arguments", expr.line)
            for arg in expr.args:
                arg_type = self._expr(arg, scope).decay()
                if arg_type.pointer > 0:
                    raise SemanticError(
                        "mmio_write expects integer arguments", expr.line
                    )
            return INT
        if info is None:
            raise SemanticError(f"call to undefined function {expr.func!r}", expr.line)
        params = info.node.params
        if len(params) != len(expr.args):
            raise SemanticError(
                f"{expr.func} expects {len(params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        for param, arg in zip(params, expr.args):
            arg_type = self._expr(arg, scope).decay()
            if param.type.pointer > 0:
                if arg_type.pointer == 0:
                    raise SemanticError(
                        f"argument {param.name!r} of {expr.func} needs a pointer", expr.line
                    )
            elif arg_type.pointer > 0:
                raise SemanticError(
                    f"argument {param.name!r} of {expr.func} needs an integer", expr.line
                )
        return info.node.return_type


def analyze(program: ast.ProgramAst) -> CheckedProgram:
    """Type-check and annotate *program*; raises :class:`SemanticError`."""
    return Analyzer(program).run()
