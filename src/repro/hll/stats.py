"""HLL operation-frequency analysis (the paper's Table 1 method).

The argument that opens the paper: measure how often high-level-language
operations *occur* dynamically, then weight each occurrence by the
machine instructions and memory references a conventional compiler
spends on it.  Plain counts make assignment look dominant; the weighted
view reveals procedure CALL/RETURN as the most expensive operation -
the observation that motivates register windows.

``dynamic_op_counts`` instruments the reference interpreter;
``weighted_frequency`` applies per-operation cost weights derived from
the conventional (VAX-style) compilation sequences this package's own
CISC code generator emits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.hll.interp import run_program


@dataclass(frozen=True)
class OpWeight:
    """Cost of one dynamic occurrence on a conventional machine."""

    instructions: float
    memory_refs: float


#: Machine-level cost per occurrence, measured from the sequences our
#: VAX-style backend emits: an assignment is a move (often memory);
#: a loop iteration is compare+branch+step; a call is argument pushes,
#: JSR, register save/restore, frame setup, and RTS.
VAX_STYLE_WEIGHTS: dict[str, OpWeight] = {
    "assign": OpWeight(instructions=2.0, memory_refs=1.0),
    "loop": OpWeight(instructions=4.0, memory_refs=1.5),
    "call": OpWeight(instructions=22.0, memory_refs=14.0),
    "if": OpWeight(instructions=2.0, memory_refs=0.6),
    "index": OpWeight(instructions=2.0, memory_refs=1.0),
    "binop": OpWeight(instructions=1.0, memory_refs=0.2),
    "return": OpWeight(instructions=0.0, memory_refs=0.0),  # folded into call
}

#: The operations the paper's table reports (binop/index fold into the
#: statements that contain them; return folds into call).
REPORTED_OPS = ("assign", "loop", "call", "if")


def dynamic_op_counts(sources: list[str], max_ops: int = 50_000_000) -> Counter:
    """Aggregate dynamic HLL operation counts over Mini-C *sources*."""
    totals: Counter = Counter()
    for source in sources:
        result = run_program(source, max_ops=max_ops)
        totals.update(result.op_counts)
    return totals


@dataclass(frozen=True)
class FrequencyRow:
    """One line of the Table-1-style output."""

    operation: str
    occurrence_percent: float
    instruction_percent: float
    memory_ref_percent: float


def weighted_frequency(
    counts: Counter, weights: dict[str, OpWeight] | None = None
) -> list[FrequencyRow]:
    """The paper's three-column view: raw, instruction- and ref-weighted."""
    if weights is None:
        weights = VAX_STYLE_WEIGHTS
    occurrences = {op: counts.get(op, 0) for op in REPORTED_OPS}
    instr = {op: occurrences[op] * weights[op].instructions for op in REPORTED_OPS}
    refs = {op: occurrences[op] * weights[op].memory_refs for op in REPORTED_OPS}
    total_occ = sum(occurrences.values()) or 1
    total_instr = sum(instr.values()) or 1
    total_refs = sum(refs.values()) or 1
    rows = [
        FrequencyRow(
            operation=op.upper(),
            occurrence_percent=100.0 * occurrences[op] / total_occ,
            instruction_percent=100.0 * instr[op] / total_instr,
            memory_ref_percent=100.0 * refs[op] / total_refs,
        )
        for op in REPORTED_OPS
    ]
    rows.sort(key=lambda row: -row.memory_ref_percent)
    return rows
