"""Recursive-descent parser for Mini-C.

Grammar (roughly)::

    program     := (global | function)*
    global      := type declarator ('=' init)? ';'
    function    := type IDENT '(' params ')' block
    type        := ('int' | 'char' | 'void') '*'*
    declarator  := IDENT ('[' NUMBER ']')?
    block       := '{' stmt* '}'
    stmt        := block | decl ';' | 'if' ... | 'while' ... | 'for' ...
                 | 'return' expr? ';' | 'break' ';' | 'continue' ';'
                 | simple ';'
    simple      := lvalue '=' expr | expr          (assignment or call)
    expr        := ternary-free C expression grammar with && / || / | /
                   ^ / & / equality / relational / shift / additive /
                   multiplicative / unary / postfix levels
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.hll import ast
from repro.hll.lexer import Kind, Tok, tokenize

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, ahead: int = 0) -> Tok:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Tok:
        token = self.peek()
        self.pos += 1
        return token

    def at_op(self, *ops: str) -> bool:
        token = self.peek()
        return token.kind is Kind.OP and token.text in ops

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind is Kind.KEYWORD and token.text in words

    def expect_op(self, op: str) -> Tok:
        token = self.next()
        if token.kind is not Kind.OP or token.text != op:
            raise ParseError(f"expected {op!r}, found {token.text!r}", token.line)
        return token

    def expect_ident(self) -> Tok:
        token = self.next()
        if token.kind is not Kind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line)
        return token

    # -- top level ----------------------------------------------------------

    def parse(self) -> ast.ProgramAst:
        program = ast.ProgramAst()
        while self.peek().kind is not Kind.EOF:
            if not self.at_keyword("int", "char", "void"):
                raise ParseError(
                    f"expected declaration, found {self.peek().text!r}", self.peek().line
                )
            base_type = self._type()
            name = self.expect_ident()
            if self.at_op("("):
                program.functions.append(self._function(base_type, name))
            else:
                program.globals.append(self._global(base_type, name))
        return program

    def _type(self) -> ast.Type:
        token = self.next()
        base = "int" if token.text == "void" else token.text
        pointer = 0
        while self.at_op("*"):
            self.next()
            pointer += 1
        return ast.Type(base, pointer)

    def _array_suffix(self, base: ast.Type) -> ast.Type:
        if self.at_op("["):
            self.next()
            size_tok = self.next()
            if size_tok.kind is not Kind.NUMBER:
                raise ParseError("array size must be a literal", size_tok.line)
            self.expect_op("]")
            return ast.Type(base.base, base.pointer, size_tok.value)
        return base

    def _global(self, base: ast.Type, name: Tok) -> ast.GlobalVar:
        var_type = self._array_suffix(base)
        init = 0
        init_list = None
        init_string = None
        if self.at_op("="):
            self.next()
            token = self.peek()
            if token.kind is Kind.STRING:
                init_string = self.next().text
            elif self.at_op("{"):
                init_list = self._init_list()
            else:
                init = self._const_expr()
        self.expect_op(";")
        return ast.GlobalVar(
            name.text, var_type, init=init, init_list=init_list,
            init_string=init_string, line=name.line,
        )

    def _init_list(self) -> list[int]:
        self.expect_op("{")
        values: list[int] = []
        if not self.at_op("}"):
            values.append(self._const_expr())
            while self.at_op(","):
                self.next()
                values.append(self._const_expr())
        self.expect_op("}")
        return values

    def _const_expr(self) -> int:
        sign = 1
        while self.at_op("-"):
            self.next()
            sign = -sign
        token = self.next()
        if token.kind not in (Kind.NUMBER, Kind.CHAR):
            raise ParseError("expected constant expression", token.line)
        return sign * token.value

    def _function(self, return_type: ast.Type, name: Tok) -> ast.Function:
        self.expect_op("(")
        params: list[ast.Param] = []
        if not self.at_op(")"):
            if self.at_keyword("void") and self.peek(1).kind is Kind.OP and self.peek(1).text == ")":
                self.next()
            else:
                params.append(self._param())
                while self.at_op(","):
                    self.next()
                    params.append(self._param())
        self.expect_op(")")
        body = self._block()
        return ast.Function(name.text, params, return_type, body, line=name.line)

    def _param(self) -> ast.Param:
        if not self.at_keyword("int", "char"):
            raise ParseError(f"expected parameter type, found {self.peek().text!r}",
                             self.peek().line)
        ptype = self._type()
        name = self.expect_ident()
        if self.at_op("["):  # array parameters decay to pointers
            self.next()
            self.expect_op("]")
            ptype = ast.Type(ptype.base, ptype.pointer + 1)
        return ast.Param(name.text, ptype, line=name.line)

    # -- statements ----------------------------------------------------------------

    def _block(self) -> ast.Block:
        open_tok = self.expect_op("{")
        body: list[ast.Stmt] = []
        while not self.at_op("}"):
            if self.peek().kind is Kind.EOF:
                raise ParseError("unterminated block", open_tok.line)
            body.append(self._statement())
        self.expect_op("}")
        return ast.Block(line=open_tok.line, body=body)

    def _statement(self) -> ast.Stmt:
        token = self.peek()
        if self.at_op("{"):
            return self._block()
        if self.at_keyword("int", "char"):
            decl = self._declaration()
            self.expect_op(";")
            return decl
        if self.at_keyword("if"):
            return self._if()
        if self.at_keyword("while"):
            return self._while()
        if self.at_keyword("do"):
            return self._do_while()
        if self.at_keyword("for"):
            return self._for()
        if self.at_keyword("return"):
            self.next()
            value = None
            if not self.at_op(";"):
                value = self._expression()
            self.expect_op(";")
            return ast.Return(line=token.line, value=value)
        if self.at_keyword("break"):
            self.next()
            self.expect_op(";")
            return ast.Break(line=token.line)
        if self.at_keyword("continue"):
            self.next()
            self.expect_op(";")
            return ast.Continue(line=token.line)
        stmt = self._simple_statement()
        self.expect_op(";")
        return stmt

    def _declaration(self) -> ast.Declaration:
        line = self.peek().line
        base = self._type()
        name = self.expect_ident()
        decl_type = self._array_suffix(base)
        init = None
        init_list = None
        init_string = None
        if self.at_op("="):
            self.next()
            if self.peek().kind is Kind.STRING and decl_type.is_array:
                init_string = self.next().text
            elif self.at_op("{"):
                init_list = self._init_list()
            else:
                # a string literal initializing a pointer is an ordinary
                # expression (it evaluates to the pooled array's address)
                init = self._expression()
        return ast.Declaration(
            line=line, name=name.text, decl_type=decl_type,
            init=init, init_list=init_list, init_string=init_string,
        )

    def _if(self) -> ast.If:
        token = self.next()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        then = self._statement()
        otherwise = None
        if self.at_keyword("else"):
            self.next()
            otherwise = self._statement()
        return ast.If(line=token.line, cond=cond, then=then, otherwise=otherwise)

    def _while(self) -> ast.While:
        token = self.next()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        body = self._statement()
        return ast.While(line=token.line, cond=cond, body=body)

    def _do_while(self) -> ast.DoWhile:
        token = self.next()
        body = self._statement()
        if not self.at_keyword("while"):
            raise ParseError("expected 'while' after do-body", self.peek().line)
        self.next()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(line=token.line, body=body, cond=cond)

    def _for(self) -> ast.For:
        token = self.next()
        self.expect_op("(")
        init = None
        if not self.at_op(";"):
            if self.at_keyword("int", "char"):
                init = self._declaration()
            else:
                init = self._simple_statement()
        self.expect_op(";")
        cond = None
        if not self.at_op(";"):
            cond = self._expression()
        self.expect_op(";")
        step = None
        if not self.at_op(")"):
            step = self._simple_statement()
        self.expect_op(")")
        body = self._statement()
        return ast.For(line=token.line, init=init, cond=cond, step=step, body=body)

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                     "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

    def _simple_statement(self) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or expression statement.

        Compound forms desugar at parse time (``x += e`` becomes
        ``x = x + (e)``), so the lvalue expression appears twice - avoid
        side-effecting subscripts in compound targets.
        """
        line = self.peek().line
        if self.at_op("++", "--"):  # prefix form
            op = self.next().text
            target = self._expression()
            return self._step_assign(target, op, line)
        expr = self._expression()
        if self.at_op("="):
            self.next()
            value = self._expression()
            return ast.Assign(line=line, target=expr, value=value)
        if self.at_op("++", "--"):
            op = self.next().text
            return self._step_assign(expr, op, line)
        token = self.peek()
        if token.kind is Kind.OP and token.text in self._COMPOUND_OPS:
            self.next()
            value = self._expression()
            combined = ast.Binary(line=line, op=self._COMPOUND_OPS[token.text],
                                  left=expr, right=value)
            return ast.Assign(line=line, target=expr, value=combined)
        return ast.ExprStmt(line=line, expr=expr)

    @staticmethod
    def _step_assign(target: ast.Expr, op: str, line: int) -> ast.Assign:
        delta = ast.IntLit(line=line, value=1)
        combined = ast.Binary(line=line, op="+" if op == "++" else "-",
                              left=target, right=delta)
        return ast.Assign(line=line, target=target, value=combined)

    # -- expressions ----------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        ops = _BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while self.at_op(*ops):
            op = self.next()
            right = self._binary(level + 1)
            left = ast.Binary(line=op.line, op=op.text, left=left, right=right)
        return left

    def _unary(self) -> ast.Expr:
        if self.at_op("-", "!", "~", "*", "&"):
            op = self.next()
            operand = self._unary()
            if op.text == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(line=op.line, value=-operand.value)
            return ast.Unary(line=op.line, op=op.text, operand=operand)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self.at_op("["):
            bracket = self.next()
            index = self._expression()
            self.expect_op("]")
            expr = ast.Index(line=bracket.line, array=expr, index=index)
        return expr

    def _primary(self) -> ast.Expr:
        token = self.next()
        if token.kind in (Kind.NUMBER, Kind.CHAR):
            return ast.IntLit(line=token.line, value=token.value)
        if token.kind is Kind.STRING:
            return ast.StrLit(line=token.line, value=token.text)
        if token.kind is Kind.IDENT:
            if self.at_op("("):
                self.next()
                args: list[ast.Expr] = []
                if not self.at_op(")"):
                    args.append(self._expression())
                    while self.at_op(","):
                        self.next()
                        args.append(self._expression())
                self.expect_op(")")
                return ast.Call(line=token.line, func=token.text, args=args)
            return ast.Name(line=token.line, ident=token.text)
        if token.kind is Kind.OP and token.text == "(":
            expr = self._expression()
            self.expect_op(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse_program(source: str) -> ast.ProgramAst:
    """Parse a Mini-C translation unit."""
    return Parser(source).parse()
