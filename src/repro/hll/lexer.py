"""Tokenizer for Mini-C source."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = {
    "int", "char", "void", "if", "else", "while", "for", "do",
    "return", "break", "continue",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~",
    "&", "|", "^", "(", ")", "[", "]", "{", "}", ",", ";",
]


class Kind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    OP = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Tok:
    kind: Kind
    text: str
    line: int
    value: int = 0


def tokenize(source: str) -> list[Tok]:
    """Tokenize Mini-C *source*; raises :class:`LexError` on bad input."""
    tokens: list[Tok] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                tokens.append(Tok(Kind.NUMBER, source[start:i], line, int(source[start:i], 16)))
            else:
                while i < n and source[i].isdigit():
                    i += 1
                tokens.append(Tok(Kind.NUMBER, source[start:i], line, int(source[start:i])))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = Kind.KEYWORD if text in KEYWORDS else Kind.IDENT
            tokens.append(Tok(kind, text, line))
            continue
        if ch == '"':
            chars, i = _scan_quoted(source, i + 1, '"', line)
            tokens.append(Tok(Kind.STRING, chars, line))
            continue
        if ch == "'":
            chars, i = _scan_quoted(source, i + 1, "'", line)
            if len(chars) != 1:
                raise LexError(f"character literal must hold one char: {chars!r}", line)
            tokens.append(Tok(Kind.CHAR, chars, line, ord(chars)))
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Tok(Kind.OP, op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Tok(Kind.EOF, "", line))
    return tokens


_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "r": "\r", "\\": "\\", '"': '"', "'": "'"}


def _scan_quoted(source: str, i: int, quote: str, line: int) -> tuple[str, int]:
    chars: list[str] = []
    n = len(source)
    while i < n and source[i] != quote:
        if source[i] == "\n":
            raise LexError("unterminated literal", line)
        if source[i] == "\\" and i + 1 < n:
            escaped = source[i + 1]
            chars.append(_ESCAPES.get(escaped, escaped))
            i += 2
        else:
            chars.append(source[i])
            i += 1
    if i >= n:
        raise LexError("unterminated literal", line)
    return "".join(chars), i + 1
