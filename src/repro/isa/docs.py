"""ISA reference generator.

Renders the complete RISC I programmer's reference - instruction table,
register map, condition codes, formats - directly from the metadata in
this package, so the documentation can never drift from the
implementation.  ``python -m repro.isa.docs`` prints the Markdown.
"""

from __future__ import annotations

from repro.isa.conditions import Cond
from repro.isa.opcodes import ALL_SPECS, Category
from repro.isa.registers import (
    GLOBAL_REGS,
    HIGH_REGS,
    LOCAL_REGS,
    LOW_REGS,
    NUM_PHYSICAL_REGISTERS,
    NUM_WINDOWS,
    RegisterNamespace,
)

_COND_MEANINGS = {
    Cond.NEVER: "never taken",
    Cond.ALW: "always taken",
    Cond.EQ: "equal (Z)",
    Cond.NE: "not equal (!Z)",
    Cond.LT: "signed less (N xor V)",
    Cond.LE: "signed less-or-equal",
    Cond.GT: "signed greater",
    Cond.GE: "signed greater-or-equal",
    Cond.LTU: "unsigned less (borrow)",
    Cond.LEU: "unsigned less-or-equal",
    Cond.GTU: "unsigned greater",
    Cond.GEU: "unsigned greater-or-equal",
    Cond.MI: "negative (N)",
    Cond.PL: "non-negative (!N)",
    Cond.V: "overflow",
    Cond.NV: "no overflow",
}


def instruction_table() -> str:
    """Markdown table of all 31 instructions, grouped by category."""
    lines = ["| mnemonic | category | format | cycles | operation |",
             "|---|---|---|---|---|"]
    for category in Category:
        for opcode, spec in ALL_SPECS.items():
            if spec.category is not category:
                continue
            lines.append(
                f"| `{opcode.name.lower()}` | {category.value} | "
                f"{spec.fmt.value} | {spec.cycles} | {spec.description} |"
            )
    return "\n".join(lines)


def register_map() -> str:
    """Markdown description of the visible register file."""
    rows = [
        ("r0", "GLOBAL", "always reads 0; writes discarded"),
        (f"r1-r{GLOBAL_REGS[-1]}", "GLOBAL", "shared by every window (r8=fp, r9=sp)"),
        (f"r{LOW_REGS[0]}-r{LOW_REGS[-1]}", "LOW",
         "outgoing arguments; physically the callee's HIGH block"),
        (f"r{LOCAL_REGS[0]}-r{LOCAL_REGS[-1]}", "LOCAL", "private scratch"),
        (f"r{HIGH_REGS[0]}-r{HIGH_REGS[-1]}", "HIGH",
         "incoming arguments; r31 holds the return PC (alias `ra`)"),
    ]
    lines = ["| registers | block | role |", "|---|---|---|"]
    lines += [f"| {regs} | {block} | {role} |" for regs, block, role in rows]
    lines.append("")
    lines.append(
        f"{NUM_PHYSICAL_REGISTERS} physical registers = 10 globals + "
        f"{NUM_WINDOWS} windows x 16 unique, 6-register overlap."
    )
    return "\n".join(lines)


def condition_table() -> str:
    lines = ["| code | name | meaning |", "|---|---|---|"]
    for cond in Cond:
        lines.append(f"| {int(cond)} | `{cond.name.lower()}` | {_COND_MEANINGS[cond]} |")
    return "\n".join(lines)


def aliases_table() -> str:
    lines = ["| alias | register |", "|---|---|"]
    for alias, number in sorted(RegisterNamespace.ALIASES.items()):
        lines.append(f"| `{alias}` | r{number} |")
    return "\n".join(lines)


def trap_table() -> str:
    """Markdown table of the architectural trap causes."""
    # Imported here: the trap metadata lives with the executor, and the
    # isa package must stay importable without repro.cpu.
    from repro.cpu.machine import TrapCause

    lines = ["| code | cause | condition |", "|---|---|---|"]
    for cause in TrapCause:
        lines.append(f"| {int(cause)} | `{cause.name}` | {cause.describe()} |")
    return "\n".join(lines)


def traps_section() -> str:
    """The trap-architecture section of the reference."""
    return "\n".join(
        [
            "## Traps",
            "",
            "Abnormal conditions produce a structured, precise trap rather",
            "than an abort: the faulting instruction has no architectural",
            "effect, and the machine either halts (recording a",
            "`TrapRecord`) or vectors to a guest handler registered for",
            "the cause in its `TrapVectorTable`.",
            "",
            trap_table(),
            "",
            "Vectoring is a forced CALL, exactly like the paper's",
            "interrupt scheme: the handler starts in a fresh register",
            "window with interrupts disabled, receives the cause code in",
            "`r17` and the faulting address (or 0) in `r18`, and recovers",
            "the faulting PC with `gtlpc` (which it must read before",
            "executing anything else, since every retired instruction",
            "advances the last-PC latch).  A plain `ret` leaves the",
            "handler; `retint` additionally re-enables interrupts.  A trap",
            "taken while allocating the handler's window (save stack",
            "exhausted) is a double fault and always halts.  The",
            "`ARITHMETIC_OVERFLOW` trap is opt-in",
            "(`machine.trap_on_overflow`); RISC I itself had no overflow",
            "exception.  See `docs/FAULTS.md` for how fault-injection",
            "campaigns exercise these paths.",
            "",
            "### Asynchronous interrupts",
            "",
            "`TIMER_INTERRUPT` and `DOORBELL_INTERRUPT` are *asynchronous*:",
            "they are latched by the multicore platform device",
            "(`request_interrupt`) rather than raised by a faulting",
            "instruction, and the latch is drained at the next instruction",
            "boundary where interrupts are enabled and the previous",
            "instruction was not a taken transfer - an interrupt is never",
            "taken between a delayed jump and its delay slot.  Taking one is",
            "the same forced CALL as a vectored trap (fresh window,",
            "interrupts disabled, interrupted PC in the last-PC latch for",
            "`gtlpc`); the handler resumes with `retint`, which re-enables",
            "interrupts.  The cause is read from the device's `IRQ_CAUSE`",
            "register, not from `r17`.  See `docs/MULTICORE.md` for the",
            "delivery pipeline and the handler discipline.",
        ]
    )


def mmio_section() -> str:
    """The memory-mapped I/O section of the reference."""
    # Imported here for the same reason as trap_table: the isa package
    # must stay importable without the multicore platform.
    from repro.multicore.device import MMIO_BASE, MMIO_LIMIT

    return "\n".join(
        [
            "## Memory-mapped I/O",
            "",
            "`ldl`/`stl` are the only I/O instructions.  Two regions of the",
            "address space have device semantics:",
            "",
            "* the console byte (`0xF0000`): a byte store prints its value;",
            "* the multicore platform window",
            f"  (`{MMIO_BASE:#x}`-`{MMIO_LIMIT:#x}`, exclusive): word-only",
            "  access to the timer/doorbell/lock/console registers of the",
            "  platform device when one is mapped.  Sub-word access to the",
            "  window traps with `OUT_OF_RANGE_ACCESS`, and a word *load*",
            "  may have side effects (the lock bank's test-and-set cells).",
            "",
            "The full register map is generated into `docs/MULTICORE.md`",
            "from `repro.multicore.device.REGISTERS`.",
        ]
    )


def render_reference() -> str:
    """The complete Markdown ISA reference."""
    parts = [
        "# RISC I instruction-set reference",
        "",
        "*Generated from `repro.isa` metadata - do not edit by hand.*",
        "",
        "## Instructions (31)",
        "",
        instruction_table(),
        "",
        "## Registers",
        "",
        register_map(),
        "",
        "### Assembler aliases",
        "",
        aliases_table(),
        "",
        "## Jump conditions",
        "",
        condition_table(),
        "",
        traps_section(),
        "",
        mmio_section(),
        "",
        "## Notes",
        "",
        "* Every instruction is exactly 32 bits; see the F1 figure for the",
        "  two field layouts.",
        "* All control transfers are delayed: the following instruction",
        "  (the delay slot) executes before the transfer takes effect.",
        "* Loads and stores are the only memory instructions and take two",
        "  cycles; everything else takes one.",
        "* ALU mnemonics accept an `s` suffix (`adds`, `subs`, ...) to set",
        "  the condition codes.",
    ]
    return "\n".join(parts) + "\n"


if __name__ == "__main__":
    print(render_reference())
