"""The RISC I instruction-set architecture.

This package defines the 31 instructions of the Berkeley RISC I
(Patterson & Sequin, ISCA 1981): their mnemonics, categories, 32-bit
encodings (short-immediate and long-immediate formats), the condition-code
predicates used by conditional jumps, and the register-window naming and
physical mapping.
"""

from repro.isa.conditions import COND_BY_CODE, COND_BY_NAME, Cond, cond_holds
from repro.isa.decode import CachingDecoder, decode
from repro.isa.encode import encode
from repro.isa.formats import Format, Instruction
from repro.isa.opcodes import (
    ALL_SPECS,
    INSTRUCTION_COUNT,
    Category,
    Opcode,
    Spec,
    spec_for,
)
from repro.isa.registers import (
    GLOBAL_REGS,
    HIGH_REGS,
    LOCAL_REGS,
    LOW_REGS,
    NUM_PHYSICAL_REGISTERS,
    NUM_WINDOWS,
    REGS_PER_WINDOW_UNIQUE,
    VISIBLE_REGISTERS,
    WINDOW_OVERLAP,
    RegisterNamespace,
    physical_index,
    register_name,
    register_number,
)

__all__ = [
    "ALL_SPECS",
    "COND_BY_CODE",
    "COND_BY_NAME",
    "CachingDecoder",
    "Category",
    "Cond",
    "Format",
    "GLOBAL_REGS",
    "HIGH_REGS",
    "INSTRUCTION_COUNT",
    "Instruction",
    "LOCAL_REGS",
    "LOW_REGS",
    "NUM_PHYSICAL_REGISTERS",
    "NUM_WINDOWS",
    "Opcode",
    "REGS_PER_WINDOW_UNIQUE",
    "RegisterNamespace",
    "Spec",
    "VISIBLE_REGISTERS",
    "WINDOW_OVERLAP",
    "cond_holds",
    "decode",
    "encode",
    "physical_index",
    "register_name",
    "register_number",
    "spec_for",
]
