"""Condition codes for RISC I conditional jumps.

Conditional jumps (JMP, JMPR) reuse the 5-bit *dest* field to hold a
condition predicate over the PSW flags N (negative), Z (zero), V
(overflow) and C (carry/borrow).  The flag convention after a subtract is
x86-style: C is set when an unsigned borrow occurred (``a < b`` unsigned).
"""

from __future__ import annotations

import enum


class Cond(enum.IntEnum):
    """Jump predicates (encoded in the dest field of JMP/JMPR)."""

    NEVER = 0
    ALW = 1  # always
    EQ = 2  # Z
    NE = 3  # !Z
    LT = 4  # signed less: N ^ V
    LE = 5  # signed less-or-equal: Z | (N ^ V)
    GT = 6  # signed greater
    GE = 7  # signed greater-or-equal
    LTU = 8  # unsigned less: C (borrow)
    LEU = 9  # unsigned less-or-equal: C | Z
    GTU = 10  # unsigned greater
    GEU = 11  # unsigned greater-or-equal
    MI = 12  # minus: N
    PL = 13  # plus: !N
    V = 14  # overflow
    NV = 15  # no overflow


COND_BY_NAME: dict[str, Cond] = {c.name: c for c in Cond}
COND_BY_CODE: dict[int, Cond] = {int(c): c for c in Cond}


def cond_holds(cond: Cond, n: bool, z: bool, v: bool, c: bool) -> bool:
    """Evaluate predicate *cond* over the four PSW flags."""
    if cond is Cond.NEVER:
        return False
    if cond is Cond.ALW:
        return True
    if cond is Cond.EQ:
        return z
    if cond is Cond.NE:
        return not z
    if cond is Cond.LT:
        return n != v
    if cond is Cond.LE:
        return z or (n != v)
    if cond is Cond.GT:
        return not (z or (n != v))
    if cond is Cond.GE:
        return n == v
    if cond is Cond.LTU:
        return c
    if cond is Cond.LEU:
        return c or z
    if cond is Cond.GTU:
        return not (c or z)
    if cond is Cond.GEU:
        return not c
    if cond is Cond.MI:
        return n
    if cond is Cond.PL:
        return not n
    if cond is Cond.V:
        return v
    if cond is Cond.NV:
        return not v
    raise ValueError(f"unknown condition {cond!r}")


#: The condition that tests the logically opposite predicate.
NEGATION: dict[Cond, Cond] = {
    Cond.NEVER: Cond.ALW,
    Cond.ALW: Cond.NEVER,
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
    Cond.LTU: Cond.GEU,
    Cond.GEU: Cond.LTU,
    Cond.LEU: Cond.GTU,
    Cond.GTU: Cond.LEU,
    Cond.MI: Cond.PL,
    Cond.PL: Cond.MI,
    Cond.V: Cond.NV,
    Cond.NV: Cond.V,
}


def negate(cond: Cond) -> Cond:
    """Return the predicate that holds exactly when *cond* does not."""
    return NEGATION[cond]
