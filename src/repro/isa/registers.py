"""Register naming and the overlapped-window physical mapping.

RISC I gives every procedure a 32-register view:

* ``r0``-``r9``   GLOBAL - shared by all procedures; ``r0`` always reads 0.
* ``r10``-``r15`` LOW    - outgoing parameters to callees.
* ``r16``-``r25`` LOCAL  - scratch local to the procedure.
* ``r26``-``r31`` HIGH   - incoming parameters from the caller.

The register file holds 8 windows.  A window owns 16 unique registers
(its LOW + LOCAL blocks); its HIGH block *is* the caller's LOW block, a
6-register overlap through which parameters pass without being copied.
Total physical registers: ``10 globals + 8 x 16 = 138``, the number the
paper reports.
"""

from __future__ import annotations

NUM_WINDOWS = 8
NUM_GLOBALS = 10
WINDOW_OVERLAP = 6
NUM_LOCALS = 10
VISIBLE_REGISTERS = 32
REGS_PER_WINDOW_UNIQUE = WINDOW_OVERLAP + NUM_LOCALS  # LOW + LOCAL = 16
NUM_PHYSICAL_REGISTERS = NUM_GLOBALS + NUM_WINDOWS * REGS_PER_WINDOW_UNIQUE  # 138

GLOBAL_REGS = range(0, NUM_GLOBALS)  # r0-r9
LOW_REGS = range(NUM_GLOBALS, NUM_GLOBALS + WINDOW_OVERLAP)  # r10-r15
LOCAL_REGS = range(16, 16 + NUM_LOCALS)  # r16-r25
HIGH_REGS = range(26, 26 + WINDOW_OVERLAP)  # r26-r31

#: Register that CALL writes the return PC into (caller's view).
RETURN_ADDRESS_CALLER = 15
#: Same physical register seen from the callee (HIGH block).
RETURN_ADDRESS_CALLEE = 31
#: Conventional stack pointer for spilled data (a global).
STACK_POINTER = 9
#: Conventional frame pointer (a global, used by the CISC-style ablation).
FRAME_POINTER = 8


class RegisterNamespace:
    """Symbolic names accepted by the assembler (``r0``..``r31`` + aliases)."""

    ALIASES = {
        "sp": STACK_POINTER,
        "fp": FRAME_POINTER,
        "ra": RETURN_ADDRESS_CALLEE,
        "zero": 0,
    }

    @classmethod
    def lookup(cls, name: str) -> int | None:
        """Resolve a register name to its number, or None if not a register."""
        lowered = name.lower()
        if lowered in cls.ALIASES:
            return cls.ALIASES[lowered]
        if lowered.startswith("r") and lowered[1:].isdigit():
            number = int(lowered[1:])
            if 0 <= number < VISIBLE_REGISTERS:
                return number
        return None


def register_name(number: int) -> str:
    """Canonical assembly name for visible register *number*."""
    if not 0 <= number < VISIBLE_REGISTERS:
        raise ValueError(f"register number {number} out of range")
    return f"r{number}"


def register_number(name: str) -> int:
    """Parse a register name; raises ValueError for non-registers."""
    number = RegisterNamespace.lookup(name)
    if number is None:
        raise ValueError(f"{name!r} is not a register")
    return number


def physical_index(window: int, reg: int, num_windows: int = NUM_WINDOWS) -> int:
    """Map (window, visible register) to a physical register index.

    Globals map identically for every window.  A window's LOW+LOCAL block
    (r10-r25) is its own 16-register slice; its HIGH block (r26-r31) is an
    alias for the *caller's* (window+1's) LOW block.  Windows are arranged
    circularly, so CALL decrements the window pointer modulo
    *num_windows*.
    """
    if not 0 <= reg < VISIBLE_REGISTERS:
        raise ValueError(f"register number {reg} out of range")
    window %= num_windows
    if reg < NUM_GLOBALS:
        return reg
    if reg < 26:  # LOW (r10-r15) + LOCAL (r16-r25): this window's unique block
        return NUM_GLOBALS + REGS_PER_WINDOW_UNIQUE * window + (reg - NUM_GLOBALS)
    # HIGH (r26-r31): the caller's LOW block
    caller = (window + 1) % num_windows
    return NUM_GLOBALS + REGS_PER_WINDOW_UNIQUE * caller + (reg - 26)


def block_of(reg: int) -> str:
    """Name of the block (GLOBAL/LOW/LOCAL/HIGH) containing visible *reg*."""
    if reg in GLOBAL_REGS:
        return "GLOBAL"
    if reg in LOW_REGS:
        return "LOW"
    if reg in LOCAL_REGS:
        return "LOCAL"
    if reg in HIGH_REGS:
        return "HIGH"
    raise ValueError(f"register number {reg} out of range")
