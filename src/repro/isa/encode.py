"""Encode :class:`~repro.isa.formats.Instruction` objects into 32-bit words."""

from __future__ import annotations

from repro.common.bitops import fits_signed, to_unsigned
from repro.errors import EncodingError
from repro.isa.formats import (
    FIELD_DEST,
    FIELD_IMM19,
    FIELD_IMMFLAG,
    FIELD_OPCODE,
    FIELD_RS1,
    FIELD_S2,
    FIELD_SCC,
    LONG_IMM_BITS,
    SHORT_IMM_BITS,
    Instruction,
)
from repro.isa.opcodes import ALL_SPECS, Format


def _place(lo_width: tuple[int, int], value: int) -> int:
    lo, width = lo_width
    return (value & ((1 << width) - 1)) << lo


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < 32:
        raise EncodingError(f"{name} register {value} out of range 0..31")


def encode(inst: Instruction) -> int:
    """Encode *inst*; raises :class:`EncodingError` on out-of-range fields."""
    spec = ALL_SPECS.get(inst.opcode)
    if spec is None:
        raise EncodingError(f"unknown opcode {inst.opcode!r}")
    _check_reg("dest", inst.dest)
    word = _place(FIELD_OPCODE, int(inst.opcode)) | _place(FIELD_SCC, int(inst.scc))
    word |= _place(FIELD_DEST, inst.dest)
    if spec.fmt is Format.LONG:
        if not fits_signed(inst.imm19, LONG_IMM_BITS):
            raise EncodingError(f"imm19 value {inst.imm19} does not fit in 19 bits")
        word |= _place(FIELD_IMM19, to_unsigned(inst.imm19, LONG_IMM_BITS))
        return word
    _check_reg("rs1", inst.rs1)
    word |= _place(FIELD_RS1, inst.rs1)
    if inst.imm:
        if not fits_signed(inst.s2, SHORT_IMM_BITS):
            raise EncodingError(f"immediate {inst.s2} does not fit in 13 bits")
        word |= _place(FIELD_IMMFLAG, 1)
        word |= _place(FIELD_S2, to_unsigned(inst.s2, SHORT_IMM_BITS))
    else:
        _check_reg("rs2", inst.s2)
        word |= _place(FIELD_S2, inst.s2)
    return word


def encode_program(instructions: list[Instruction]) -> list[int]:
    """Encode a whole instruction sequence."""
    return [encode(inst) for inst in instructions]
