"""Decoded instruction representation and the two 32-bit bitfield layouts.

Both RISC I formats are exactly 32 bits (the paper's key simplification
over variable-length CISC encodings):

``SHORT``  (register / 13-bit immediate operand)::

    | opcode:7 | scc:1 | dest:5 | rs1:5 | imm:1 | s2:13 |
      31..25     24      23..19   18..14  13      12..0

    imm = 0: s2's low 5 bits name register rs2.
    imm = 1: s2 is a sign-extended 13-bit immediate.

``LONG``  (19-bit immediate, used by JMPR / CALLR / LDHI)::

    | opcode:7 | scc:1 | dest:5 | imm19:19 |
      31..25     24      23..19   18..0
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.conditions import Cond
from repro.isa.opcodes import ALL_SPECS, Format, Opcode, Spec

# Bitfield positions (lo, width), LSB = bit 0.
FIELD_OPCODE = (25, 7)
FIELD_SCC = (24, 1)
FIELD_DEST = (19, 5)
FIELD_RS1 = (14, 5)
FIELD_IMMFLAG = (13, 1)
FIELD_S2 = (0, 13)
FIELD_IMM19 = (0, 19)

SHORT_IMM_BITS = 13
LONG_IMM_BITS = 19


@dataclass(frozen=True)
class Instruction:
    """One decoded (or to-be-encoded) RISC I instruction.

    Attributes:
        opcode: which of the 31 instructions.
        dest: destination register (or condition code for JMP/JMPR).
        rs1: first source register (SHORT format only).
        s2: second operand - register number if ``imm`` is False,
            signed immediate if True.
        imm: whether ``s2`` is an immediate.
        scc: set-condition-codes bit.
        imm19: signed 19-bit immediate (LONG format only).
    """

    opcode: Opcode
    dest: int = 0
    rs1: int = 0
    s2: int = 0
    imm: bool = False
    scc: bool = False
    imm19: int = 0

    @property
    def spec(self) -> Spec:
        return ALL_SPECS[self.opcode]

    @property
    def fmt(self) -> Format:
        return self.spec.fmt

    @property
    def cond(self) -> Cond:
        """For conditional jumps the dest field holds the predicate."""
        return Cond(self.dest & 0xF)

    def operand_registers(self) -> list[int]:
        """Registers this instruction reads (for hazard / slot-fill analysis)."""
        spec = self.spec
        regs: list[int] = []
        if spec.fmt is Format.SHORT:
            if spec.reads_rs1:
                regs.append(self.rs1)
            if spec.reads_rs2 and not self.imm:
                regs.append(self.s2 & 0x1F)
        if spec.category.name == "STORE":
            regs.append(self.dest)  # stores read the dest field as data
        return regs

    def written_register(self) -> int | None:
        """The register written, or None (r0 writes are discarded but reported)."""
        if self.spec.writes_dest and not self.spec.uses_cond:
            return self.dest
        return None

    def render(self) -> str:
        """Human-readable assembly-ish text (canonical disassembly lives in
        :mod:`repro.asm.disassembler`; this is a compact debugging view)."""
        spec = self.spec
        parts = [self.opcode.name.lower()]
        if self.scc:
            parts[0] += "s"
        if spec.fmt is Format.LONG:
            if spec.uses_cond:
                return f"{parts[0]} {self.cond.name.lower()}, {self.imm19}"
            return f"{parts[0]} r{self.dest}, {self.imm19}"
        s2_text = f"#{self.s2}" if self.imm else f"r{self.s2 & 0x1F}"
        if spec.uses_cond:
            return f"{parts[0]} {self.cond.name.lower()}, r{self.rs1}, {s2_text}"
        return f"{parts[0]} r{self.dest}, r{self.rs1}, {s2_text}"


@dataclass
class FieldSpec:
    """One named bitfield, used by the F1 instruction-format figure."""

    name: str
    lo: int
    width: int

    @property
    def hi(self) -> int:
        return self.lo + self.width - 1


#: Figure-ready layout descriptions for the two formats.
FORMAT_LAYOUTS: dict[Format, list[FieldSpec]] = {
    Format.SHORT: [
        FieldSpec("opcode", *FIELD_OPCODE),
        FieldSpec("scc", *FIELD_SCC),
        FieldSpec("dest", *FIELD_DEST),
        FieldSpec("rs1", *FIELD_RS1),
        FieldSpec("imm", *FIELD_IMMFLAG),
        FieldSpec("s2", *FIELD_S2),
    ],
    Format.LONG: [
        FieldSpec("opcode", *FIELD_OPCODE),
        FieldSpec("scc", *FIELD_SCC),
        FieldSpec("dest", *FIELD_DEST),
        FieldSpec("imm19", *FIELD_IMM19),
    ],
}
