"""The 31 RISC I instructions and their static metadata.

The paper's Table of instructions groups them into four categories:
arithmetic/logical (register-to-register only), load/store (the *only*
memory instructions), control transfer, and miscellaneous.  Every
instruction executes in one machine cycle except memory accesses, which
take two (the paper's "suspended pipeline" cycle).

Opcode numbers are this reproduction's own assignment; the paper does not
publish a binary opcode map, only the two 32-bit formats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Category(enum.Enum):
    """Instruction groups as presented in the paper."""

    ALU = "arithmetic/logical"
    LOAD = "load"
    STORE = "store"
    JUMP = "control transfer"
    MISC = "miscellaneous"


class Format(enum.Enum):
    """The two RISC I instruction formats (both exactly 32 bits)."""

    SHORT = "short-immediate"  # opcode:7 scc:1 dest:5 rs1:5 imm:1 s2:13
    LONG = "long-immediate"  # opcode:7 scc:1 dest:5 imm19:19


class Opcode(enum.IntEnum):
    """7-bit opcodes for the 31 RISC I instructions."""

    # arithmetic / logical (12)
    ADD = 0x01
    ADDC = 0x02
    SUB = 0x03
    SUBC = 0x04
    SUBR = 0x05  # reversed subtract: dest = s2 - rs1
    SUBCR = 0x06
    AND = 0x07
    OR = 0x08
    XOR = 0x09
    SLL = 0x0A
    SRL = 0x0B
    SRA = 0x0C
    # loads (5)
    LDL = 0x10  # load long (32-bit word)
    LDSU = 0x11  # load short unsigned
    LDSS = 0x12  # load short signed
    LDBU = 0x13  # load byte unsigned
    LDBS = 0x14  # load byte signed
    # stores (3)
    STL = 0x18
    STS = 0x19
    STB = 0x1A
    # control transfer (7)
    JMP = 0x20  # conditional jump, indexed address rs1+s2
    JMPR = 0x21  # conditional jump, PC-relative imm19
    CALL = 0x22  # call indexed; new window
    CALLR = 0x23  # call PC-relative; new window
    RET = 0x24  # return; restore window
    CALLINT = 0x25  # interrupt entry: new window, no jump
    RETINT = 0x26  # interrupt return
    # miscellaneous (4)
    LDHI = 0x30  # dest<31:13> = imm19; dest<12:0> = 0
    GTLPC = 0x31  # dest = last PC (used by interrupt handlers)
    GETPSW = 0x32  # dest = PSW
    PUTPSW = 0x33  # PSW = rs1 op s2


@dataclass(frozen=True)
class Spec:
    """Static description of one instruction.

    Attributes:
        opcode: the :class:`Opcode`.
        category: paper grouping.
        fmt: encoding format.
        cycles: machine cycles on the RISC I datapath (loads/stores = 2).
        reads_rs1: whether the rs1 field is a source register.
        reads_rs2: whether a register s2 operand is a source.
        writes_dest: whether the dest field is written.
        uses_cond: the dest field holds a condition code, not a register.
        is_delayed: control transfer with one delay slot.
        description: one-line summary from the paper's instruction table.
    """

    opcode: Opcode
    category: Category
    fmt: Format
    cycles: int
    reads_rs1: bool
    reads_rs2: bool
    writes_dest: bool
    uses_cond: bool
    is_delayed: bool
    description: str

    @property
    def mnemonic(self) -> str:
        return self.opcode.name


def _alu(op: Opcode, desc: str) -> Spec:
    return Spec(op, Category.ALU, Format.SHORT, 1, True, True, True, False, False, desc)


def _load(op: Opcode, desc: str) -> Spec:
    return Spec(op, Category.LOAD, Format.SHORT, 2, True, True, True, False, False, desc)


def _store(op: Opcode, desc: str) -> Spec:
    # stores read dest (the value) and rs1+s2 (the address)
    return Spec(op, Category.STORE, Format.SHORT, 2, True, True, False, False, False, desc)


ALL_SPECS: dict[Opcode, Spec] = {
    spec.opcode: spec
    for spec in [
        _alu(Opcode.ADD, "dest = rs1 + s2 (integer add)"),
        _alu(Opcode.ADDC, "dest = rs1 + s2 + carry"),
        _alu(Opcode.SUB, "dest = rs1 - s2"),
        _alu(Opcode.SUBC, "dest = rs1 - s2 - borrow"),
        _alu(Opcode.SUBR, "dest = s2 - rs1 (reversed subtract)"),
        _alu(Opcode.SUBCR, "dest = s2 - rs1 - borrow"),
        _alu(Opcode.AND, "dest = rs1 & s2"),
        _alu(Opcode.OR, "dest = rs1 | s2"),
        _alu(Opcode.XOR, "dest = rs1 ^ s2"),
        _alu(Opcode.SLL, "dest = rs1 << s2 (shift left logical)"),
        _alu(Opcode.SRL, "dest = rs1 >> s2 (shift right logical)"),
        _alu(Opcode.SRA, "dest = rs1 >> s2 (shift right arithmetic)"),
        _load(Opcode.LDL, "dest = M[rs1 + s2] (32-bit word)"),
        _load(Opcode.LDSU, "dest = M[rs1 + s2] (16-bit, zero-extended)"),
        _load(Opcode.LDSS, "dest = M[rs1 + s2] (16-bit, sign-extended)"),
        _load(Opcode.LDBU, "dest = M[rs1 + s2] (8-bit, zero-extended)"),
        _load(Opcode.LDBS, "dest = M[rs1 + s2] (8-bit, sign-extended)"),
        _store(Opcode.STL, "M[rs1 + s2] = dest (32-bit word)"),
        _store(Opcode.STS, "M[rs1 + s2] = dest (16-bit)"),
        _store(Opcode.STB, "M[rs1 + s2] = dest (8-bit)"),
        Spec(Opcode.JMP, Category.JUMP, Format.SHORT, 1, True, True, False, True, True,
             "if cond: PC = rs1 + s2 (delayed)"),
        Spec(Opcode.JMPR, Category.JUMP, Format.LONG, 1, False, False, False, True, True,
             "if cond: PC += imm19 (delayed)"),
        Spec(Opcode.CALL, Category.JUMP, Format.SHORT, 1, True, True, True, False, True,
             "dest = PC, CWP--; PC = rs1 + s2 (delayed)"),
        Spec(Opcode.CALLR, Category.JUMP, Format.LONG, 1, False, False, True, False, True,
             "dest = PC, CWP--; PC += imm19 (delayed)"),
        Spec(Opcode.RET, Category.JUMP, Format.SHORT, 1, True, True, False, False, True,
             "PC = rs1 + s2; CWP++ (delayed)"),
        Spec(Opcode.CALLINT, Category.JUMP, Format.SHORT, 1, False, False, True, False, False,
             "interrupt entry: dest = last PC, CWP--"),
        Spec(Opcode.RETINT, Category.JUMP, Format.SHORT, 1, True, True, False, False, True,
             "interrupt return: PC = rs1 + s2; CWP++"),
        Spec(Opcode.LDHI, Category.MISC, Format.LONG, 1, False, False, True, False, False,
             "dest<31:13> = imm19; dest<12:0> = 0"),
        Spec(Opcode.GTLPC, Category.MISC, Format.SHORT, 1, False, False, True, False, False,
             "dest = last PC (restart pipeline after interrupt)"),
        Spec(Opcode.GETPSW, Category.MISC, Format.SHORT, 1, False, False, True, False, False,
             "dest = PSW"),
        Spec(Opcode.PUTPSW, Category.MISC, Format.SHORT, 1, True, True, False, False, False,
             "PSW = rs1 + s2"),
    ]
}

INSTRUCTION_COUNT = len(ALL_SPECS)
assert INSTRUCTION_COUNT == 31, "RISC I defines exactly 31 instructions"

MNEMONIC_TO_OPCODE: dict[str, Opcode] = {op.name: op for op in ALL_SPECS}


def spec_for(opcode: Opcode) -> Spec:
    """Return the :class:`Spec` for *opcode* (KeyError for invalid codes)."""
    return ALL_SPECS[opcode]
