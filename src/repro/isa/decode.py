"""Decode 32-bit words back into :class:`~repro.isa.formats.Instruction`."""

from __future__ import annotations

from repro.common.bitops import bit_field, to_signed
from repro.errors import DecodingError
from repro.isa.formats import (
    FIELD_DEST,
    FIELD_IMM19,
    FIELD_IMMFLAG,
    FIELD_OPCODE,
    FIELD_RS1,
    FIELD_S2,
    FIELD_SCC,
    LONG_IMM_BITS,
    SHORT_IMM_BITS,
    Instruction,
)
from repro.isa.opcodes import ALL_SPECS, Format, Opcode


def decode(word: int) -> Instruction:
    """Decode *word*; raises :class:`DecodingError` for invalid opcodes."""
    if not 0 <= word < (1 << 32):
        raise DecodingError(f"instruction word {word:#x} is not 32 bits")
    code = bit_field(word, *FIELD_OPCODE)
    try:
        opcode = Opcode(code)
    except ValueError as exc:
        raise DecodingError(f"invalid opcode {code:#x} in word {word:#010x}") from exc
    spec = ALL_SPECS[opcode]
    scc = bool(bit_field(word, *FIELD_SCC))
    dest = bit_field(word, *FIELD_DEST)
    if spec.fmt is Format.LONG:
        imm19 = to_signed(bit_field(word, *FIELD_IMM19), LONG_IMM_BITS)
        return Instruction(opcode, dest=dest, scc=scc, imm19=imm19)
    rs1 = bit_field(word, *FIELD_RS1)
    imm = bool(bit_field(word, *FIELD_IMMFLAG))
    raw_s2 = bit_field(word, *FIELD_S2)
    if imm:
        s2 = to_signed(raw_s2, SHORT_IMM_BITS)
    else:
        s2 = raw_s2 & 0x1F
    return Instruction(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc)


def decode_program(words: list[int]) -> list[Instruction]:
    """Decode a whole program image."""
    return [decode(word) for word in words]


class CachingDecoder:
    """A memoizing instruction decoder with explicit ownership.

    Each :class:`~repro.cpu.machine.RiscMachine` constructs its own
    instance by default, so cache statistics belong to one machine and a
    fault-corrupted word observed by one machine can never satisfy a
    lookup in another.  Because :class:`Instruction` is immutable and
    decoding is a pure function of the word, a single decoder *may* be
    shared across machines deliberately (pass it to each constructor) to
    amortise decode work in multi-machine sweeps; the statistics then
    aggregate over all sharers.

    The cache is bounded with least-recently-used replacement: once
    ``max_entries`` distinct words are resident, decoding a new word
    evicts the single word whose last lookup is oldest (real programs
    hold far fewer distinct words; the bound only guards against
    adversarial fault streams, and LRU keeps the hot loop body resident
    even while such a stream churns the tail).  ``evictions`` counts
    individual evicted entries.
    """

    def __init__(self, max_entries: int = 65536):
        from collections import OrderedDict

        self.max_entries = max_entries
        self._cache: OrderedDict[int, Instruction] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def decode(self, word: int) -> Instruction:
        """Decode *word* through the cache.

        The eviction counter must stay exact even on the unusual paths
        the engines can drive: a ``max_entries`` of zero (caching
        disabled - every lookup is a miss, nothing is ever resident, and
        nothing can be *evicted*), and a bound lowered below the current
        occupancy (each subsequent miss drains the overflow one entry at
        a time, every drop counted).  Write-invalidation in the block
        engine re-decodes rewritten words through this path, so a
        drifting counter would surface as wrong ``decode_evictions`` on
        :class:`~repro.evaluation.common.BenchmarkRecord`.
        """
        inst = self._cache.get(word)
        if inst is not None:
            self.hits += 1
            self._cache.move_to_end(word)
            return inst
        self.misses += 1
        inst = decode(word)
        if self.max_entries <= 0:
            return inst
        while len(self._cache) >= self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
        self._cache[word] = inst
        return inst

    def decode_uncached(self, word: int) -> Instruction:
        """Decode bypassing the cache entirely.

        The machine routes words mutated by an instruction-fetch fault
        filter through this path, so a transient bit-flip neither reads a
        stale cached decode nor pollutes the cache for later fetches of
        the pristine word.
        """
        return decode(word)

    def cache_info(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
            "evictions": self.evictions,
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        self._cache.clear()
