"""Decode 32-bit words back into :class:`~repro.isa.formats.Instruction`."""

from __future__ import annotations

from repro.common.bitops import bit_field, to_signed
from repro.errors import DecodingError
from repro.isa.formats import (
    FIELD_DEST,
    FIELD_IMM19,
    FIELD_IMMFLAG,
    FIELD_OPCODE,
    FIELD_RS1,
    FIELD_S2,
    FIELD_SCC,
    LONG_IMM_BITS,
    SHORT_IMM_BITS,
    Instruction,
)
from repro.isa.opcodes import ALL_SPECS, Format, Opcode


def decode(word: int) -> Instruction:
    """Decode *word*; raises :class:`DecodingError` for invalid opcodes."""
    if not 0 <= word < (1 << 32):
        raise DecodingError(f"instruction word {word:#x} is not 32 bits")
    code = bit_field(word, *FIELD_OPCODE)
    try:
        opcode = Opcode(code)
    except ValueError as exc:
        raise DecodingError(f"invalid opcode {code:#x} in word {word:#010x}") from exc
    spec = ALL_SPECS[opcode]
    scc = bool(bit_field(word, *FIELD_SCC))
    dest = bit_field(word, *FIELD_DEST)
    if spec.fmt is Format.LONG:
        imm19 = to_signed(bit_field(word, *FIELD_IMM19), LONG_IMM_BITS)
        return Instruction(opcode, dest=dest, scc=scc, imm19=imm19)
    rs1 = bit_field(word, *FIELD_RS1)
    imm = bool(bit_field(word, *FIELD_IMMFLAG))
    raw_s2 = bit_field(word, *FIELD_S2)
    if imm:
        s2 = to_signed(raw_s2, SHORT_IMM_BITS)
    else:
        s2 = raw_s2 & 0x1F
    return Instruction(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc)


def decode_program(words: list[int]) -> list[Instruction]:
    """Decode a whole program image."""
    return [decode(word) for word in words]
