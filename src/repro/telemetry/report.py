"""Render run manifests as text or Markdown tables.

CLI::

    python -m repro.telemetry.report MANIFEST.json [MORE.json ...]
        [--format text|markdown|json] [--section run|stats|memory|simulation]

Accepts both single-run manifests (``risc1-repro/run-manifest/v1``) and
aggregated evaluation manifests (``risc1-repro/evaluation-manifest/v1``,
whose ``runs`` are expanded); one table column per run.  ``--format
json`` re-emits the parsed runs as one canonical JSON array (a cheap
way to normalise / concatenate manifest files).

Exit status: 0 on success, 2 on unreadable or invalid input.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.manifest import (
    EVALUATION_SCHEMA,
    ManifestError,
    RunManifest,
)

__all__ = ["load_manifests", "render_report", "main"]

#: Row layout per section: (label, getter over RunManifest).
_SECTIONS: dict = {
    "run": [
        ("workload", lambda m: m.workload),
        ("engine", lambda m: m.engine),
        ("seed", lambda m: "-" if m.seed is None else m.seed),
        ("halt", lambda m: m.halt),
        ("result", lambda m: m.result),
        ("windows", lambda m: m.config.get("num_windows", "-")),
        ("fingerprint", lambda m: m.fingerprint()[:16]),
    ],
    "stats": [
        ("instructions", lambda m: m.stats.get("instructions", 0)),
        ("cycles", lambda m: m.stats.get("cycles", 0)),
        ("calls", lambda m: m.stats.get("calls", 0)),
        ("returns", lambda m: m.stats.get("returns", 0)),
        ("taken jumps", lambda m: m.stats.get("taken_jumps", 0)),
        ("delay slots", lambda m: m.stats.get("delay_slots", 0)),
        ("slot nops", lambda m: m.stats.get("delay_slot_nops", 0)),
        ("window overflows", lambda m: m.stats.get("window_overflows", 0)),
        ("window underflows", lambda m: m.stats.get("window_underflows", 0)),
        ("max call depth", lambda m: m.stats.get("max_call_depth", 0)),
        ("traps", lambda m: m.stats.get("traps", 0)),
    ],
    "memory": [
        ("inst reads", lambda m: m.memory.get("inst_reads", 0)),
        ("data reads", lambda m: m.memory.get("data_reads", 0)),
        ("data writes", lambda m: m.memory.get("data_writes", 0)),
        ("console bytes", lambda m: m.memory.get("console_bytes", 0)),
    ],
    "simulation": [
        ("engine", lambda m: m.engine),
        ("decode hits", lambda m: m.decode_cache.get("hits", 0)),
        ("decode misses", lambda m: m.decode_cache.get("misses", 0)),
        ("decode evictions", lambda m: m.decode_cache.get("evictions", 0)),
        ("wall seconds", lambda m: _wall(m)),
    ],
}


def _wall(manifest: RunManifest) -> str:
    seconds = manifest.host.get("wall_seconds")
    return "-" if seconds is None else f"{seconds:.3f}"


def load_manifests(paths: list[str]) -> list[RunManifest]:
    """Parse every path; evaluation manifests expand to their runs."""
    manifests: list[RunManifest] = []
    for path in paths:
        with open(path) as handle:
            doc = json.load(handle)
        if isinstance(doc, dict) and doc.get("schema") == EVALUATION_SCHEMA:
            for run_doc in doc.get("runs", []):
                manifests.append(RunManifest.from_dict(run_doc))
        else:
            manifests.append(RunManifest.from_dict(doc))
    return manifests


def _column_title(manifest: RunManifest, manifests: list[RunManifest]) -> str:
    title = manifest.workload
    if sum(1 for m in manifests if m.workload == manifest.workload) > 1:
        title += f" [{manifest.engine}]"
    return title


def render_report(
    manifests: list[RunManifest],
    *,
    fmt: str = "text",
    sections: list[str] | None = None,
) -> str:
    """One table per requested section, runs as columns."""
    if not manifests:
        return "(no manifests)"
    sections = sections or list(_SECTIONS)
    columns = [_column_title(m, manifests) for m in manifests]
    blocks: list[str] = []
    for section in sections:
        rows = _SECTIONS[section]
        grid = [[label] + [str(get(m)) for m in manifests] for label, get in rows]
        header = [section] + columns
        if fmt == "markdown":
            lines = [
                "| " + " | ".join(header) + " |",
                "|" + "|".join("---" for _ in header) + "|",
            ]
            lines += ["| " + " | ".join(row) + " |" for row in grid]
        else:
            widths = [
                max(len(row[col]) for row in [header] + grid)
                for col in range(len(header))
            ]
            lines = [
                "  ".join(cell.ljust(w) for cell, w in zip(header, widths)),
                "  ".join("-" * w for w in widths),
            ]
            lines += [
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                for row in grid
            ]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render RISC I run manifests as comparison tables.",
    )
    parser.add_argument("manifests", nargs="+", help="manifest JSON files")
    parser.add_argument(
        "--format", choices=("text", "markdown", "json"), default="text"
    )
    parser.add_argument(
        "--section", action="append", choices=sorted(_SECTIONS), default=None,
        help="limit output to these sections (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    try:
        manifests = load_manifests(args.manifests)
    except (OSError, json.JSONDecodeError, ManifestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            [m.as_dict(include_host=False) for m in manifests], sort_keys=True,
            indent=2,
        ))
        return 0
    print(render_report(manifests, fmt=args.format, sections=args.section))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
