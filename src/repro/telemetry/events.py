"""Structured trace/event export: one JSONL schema for every observer.

Before this module, each execution tool serialised its own ad-hoc shape:
the tracer kept :class:`~repro.cpu.tracing.TraceRecord` objects, the
profiler rendered text, the fault injector logged
:class:`~repro.faults.injector.InjectionEvent` dataclasses, and the
call-trace recorder a bare +1/-1 list.  Here they all map onto **one
event schema** so downstream analysis reads a single format.

Every event is a flat JSON object with three envelope fields plus
per-kind payload fields:

``schema``
    :data:`EVENT_SCHEMA` (only on the first line of a stream).
``seq``
    0-based position in the stream (assigned by the writer).
``event``
    The kind - see :data:`EVENT_KINDS` and the taxonomy table in
    ``docs/OBSERVABILITY.md``.

Event positions in simulated time are reported as ``step`` (dynamic
instruction index) and ``cycle`` where the source observer provides
them; host time never appears, so streams are deterministic and
diffable.

Usage - live capture from a running machine::

    with open("run.jsonl", "w") as sink:
        exporter = TraceEventExporter(machine, JsonlEventWriter(sink))
        with exporter:                        # subscribes / unsubscribes
            machine.run(program.entry)

or convert existing tool output with the ``events_from_*`` adapters.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cpu.state import ArchState

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "JsonlEventWriter",
    "TraceEventExporter",
    "events_from_call_trace",
    "events_from_injections",
    "events_from_journal",
    "events_from_profile",
    "events_from_schedule",
    "events_from_trace",
    "read_events",
]

#: Schema tag carried by the first event of every stream.
EVENT_SCHEMA = "risc1-repro/trace-event/v1"

#: The complete event taxonomy (documented in docs/OBSERVABILITY.md).
EVENT_KINDS = (
    "run_begin",   # emitted by the exporter before the run starts
    "step",        # one completed instruction
    "mem_access",  # one data-side load/store
    "call",        # a frame was allocated (CALL/interrupt/trap vector)
    "return",      # a frame was released (RET/RETINT)
    "trap",        # a TrapRecord was logged (vectored or halting)
    "halt",        # the machine halted
    "injection",   # a fault was applied (adapter: FaultInjector log)
    "profile",     # per-function aggregate (adapter: Profiler)
    "run_end",     # emitted by the exporter when the run halts
    "trial",       # a campaign trial completed (distributed runner)
    "retry",       # a trial attempt was re-dispatched (supervisor)
    "resume",      # a journal was recovered (distributed runner)
    "slice",       # one scheduler slice (adapter: multicore schedule log)
    # execution-service kinds (repro.service; see docs/SERVICE.md)
    "request",       # a job submission was accepted for scheduling
    "response",      # a job submission was answered (any status)
    "cache_hit",     # the manifest store served the request
    "cache_miss",    # the request fell through to simulation
    "cache_store",   # a freshly simulated manifest was persisted
    "cache_evict",   # a store entry was evicted over capacity
    "rate_limited",  # a tenant's token bucket rejected the request
)


class JsonlEventWriter:
    """Serialise events to a text stream, one canonical JSON per line.

    Assigns ``seq`` numbers, stamps the schema on the first line, and
    counts what it emitted.  Keys are sorted so a stream is comparable
    byte-for-byte against a golden file.
    """

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.emitted = 0

    def write(self, event: dict) -> None:
        """Write one event (a plain dict with an ``event`` kind)."""
        payload = dict(event)
        if self.emitted == 0:
            payload["schema"] = EVENT_SCHEMA
        payload["seq"] = self.emitted
        self.stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self.emitted += 1

    def write_all(self, events: Iterable[dict]) -> int:
        """Write every event; returns how many were written."""
        count = 0
        for event in events:
            self.write(event)
            count += 1
        return count


def read_events(stream: IO[str]) -> list[dict]:
    """Parse a JSONL event stream back into dicts (inverse of the writer)."""
    return [json.loads(line) for line in stream if line.strip()]


class TraceEventExporter:
    """Attach to a machine's :class:`~repro.cpu.observers.ObserverBus`
    and stream selected events as JSONL.

    Args:
        machine: the machine to observe.
        writer: destination :class:`JsonlEventWriter`.
        events: which bus-driven kinds to capture - any subset of
            ``("step", "mem_access", "call", "return", "trap", "halt")``.
            ``step`` and ``mem_access`` are step-granular: subscribing
            them drops the fast/block engines to the oracle path
            (fidelity over speed, as for every per-step observer).
        limit: stop recording step-granular events after this many
            (boundary events still stream).

    Use as a context manager, or call :meth:`attach` / :meth:`detach`.
    """

    _BUS_EVENTS = ("step", "mem_access", "call", "return", "trap", "halt")

    def __init__(
        self,
        machine: "ArchState",
        writer: JsonlEventWriter,
        *,
        events: tuple[str, ...] = ("step", "call", "return", "trap", "halt"),
        limit: int = 1_000_000,
    ) -> None:
        unknown = set(events) - set(self._BUS_EVENTS)
        if unknown:
            raise ValueError(
                f"unknown exporter events {sorted(unknown)} "
                f"(one of {self._BUS_EVENTS})"
            )
        self.machine = machine
        self.writer = writer
        self.events = tuple(events)
        self.limit = limit
        self._step_events = 0
        self._attached = False

    # -- bus callbacks -------------------------------------------------------

    def _on_step(self, machine, pc: int, inst, taken_jump: bool) -> None:
        if self._step_events >= self.limit:
            return
        self._step_events += 1
        self.writer.write({
            "event": "step",
            "step": machine.stats.instructions,
            "cycle": machine.stats.cycles,
            "pc": pc,
            "opcode": inst.opcode.name,
            "taken_jump": taken_jump,
        })

    def _on_mem_access(self, machine, kind: str, address: int, value: int) -> None:
        if self._step_events >= self.limit:
            return
        self._step_events += 1
        self.writer.write({
            "event": "mem_access",
            "cycle": machine.stats.cycles,
            "kind": kind,
            "address": address,
            "value": value,
        })

    def _on_call(self, machine, depth: int) -> None:
        self.writer.write({
            "event": "call",
            "step": machine.stats.instructions,
            "cycle": machine.stats.cycles,
            "depth": depth,
        })

    def _on_return(self, machine, depth: int) -> None:
        self.writer.write({
            "event": "return",
            "step": machine.stats.instructions,
            "cycle": machine.stats.cycles,
            "depth": depth,
        })

    def _on_trap(self, machine, record) -> None:
        self.writer.write({
            "event": "trap",
            "step": record.instruction_index,
            "cycle": record.cycle,
            "cause": record.cause.name,
            "pc": record.pc,
            "address": record.address,
            "vectored": record.vectored,
            "in_delay_slot": record.in_delay_slot,
        })

    def _on_halt(self, machine, reason) -> None:
        self.writer.write({
            "event": "halt",
            "step": machine.stats.instructions,
            "cycle": machine.stats.cycles,
            "reason": reason.name,
        })

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> None:
        """Subscribe the selected callbacks; emits ``run_begin``."""
        if self._attached:
            return
        self.writer.write({
            "event": "run_begin",
            "engine": getattr(getattr(self.machine, "engine", None), "name", "none"),
            "events": list(self.events),
        })
        bus = self.machine.observers
        for name in self.events:
            bus.subscribe(name, getattr(self, f"_on_{name}"))
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe every callback; emits ``run_end``."""
        if not self._attached:
            return
        bus = self.machine.observers
        for name in self.events:
            bus.unsubscribe(name, getattr(self, f"_on_{name}"))
        self._attached = False
        stats = self.machine.stats
        self.writer.write({
            "event": "run_end",
            "step": stats.instructions,
            "cycle": stats.cycles,
            "halt": (
                self.machine.halted.name
                if self.machine.halted is not None else "RUNNING"
            ),
        })

    def __enter__(self) -> "TraceEventExporter":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()


# -- adapters for existing tool output ---------------------------------------


def events_from_trace(records) -> list[dict]:
    """Convert :class:`~repro.cpu.tracing.TraceRecord` objects to events.

    The tracer does not carry per-record cycle counts; positions are the
    record's index in the captured stream.
    """
    return [
        {
            "event": "step",
            "step": index,
            "pc": record.pc,
            "opcode": record.inst.opcode.name,
            "taken_jump": record.taken_jump,
        }
        for index, record in enumerate(records)
    ]


def events_from_call_trace(trace: list[int]) -> list[dict]:
    """Convert the +1/-1 call-depth stream to ``call``/``return`` events."""
    events = []
    depth = 0
    for index, delta in enumerate(trace):
        depth += 1 if delta > 0 else -1
        events.append({
            "event": "call" if delta > 0 else "return",
            "step": index,
            "depth": depth,
        })
    return events


def events_from_schedule(schedule: Iterable[tuple[int, int, int]]) -> list[dict]:
    """Convert a multicore slice log (``MulticoreSimulator.schedule``,
    ``(core, start-count, length)`` tuples) to ``slice`` events."""
    return [
        {
            "event": "slice",
            "core": core,
            "start": start,
            "instructions": executed,
        }
        for core, start, executed in schedule
    ]


def events_from_injections(log) -> list[dict]:
    """Convert a :class:`~repro.faults.injector.FaultInjector` log
    (:class:`~repro.faults.injector.InjectionEvent` list) to events."""
    return [
        {
            "event": "injection",
            "cycle": entry.cycle,
            "pc": entry.pc,
            "target": entry.spec.target.value,
            "kind": entry.spec.kind.value,
            "location": entry.spec.location,
            "original": entry.original,
            "mutated": entry.mutated,
        }
        for entry in log
    ]


def events_from_journal(entries: Iterable[dict]) -> list[dict]:
    """Convert fault-journal entries to ``trial`` events.

    *entries* are parsed journal lines (``{"trial", "attempt",
    "record"}`` objects, as written by
    :class:`repro.faults.distributed.TrialJournal`); lines without a
    ``trial`` field - the journal header - are skipped.  Each event
    carries the trial index, the attempt that produced the record, and
    the record's benchmark/outcome, so a journal can be replayed into
    the same stream shape the live distributed runner emits.
    """
    events = []
    for entry in entries:
        trial = entry.get("trial")
        record = entry.get("record")
        if not isinstance(trial, int) or not isinstance(record, dict):
            continue
        events.append({
            "event": "trial",
            "trial": trial,
            "attempt": int(entry.get("attempt", 1)),
            "benchmark": record.get("benchmark"),
            "outcome": record.get("outcome"),
        })
    return events


def events_from_profile(profiles) -> list[dict]:
    """Convert :class:`~repro.cpu.profiler.FunctionProfile` rows to events."""
    return [
        {
            "event": "profile",
            "function": profile.name,
            "start": profile.start,
            "calls": profile.calls,
            "instructions": profile.instructions,
            "cycles": profile.cycles,
        }
        for profile in profiles
    ]
