"""Typed metrics registry: counters, gauges, histograms, timers.

One :class:`MetricsRegistry` per process (or per machine, for isolated
sweeps) is the single place simulation components record operational
counters.  The registry exists in two modes:

* **enabled** (the default): instruments record real values and appear
  in :meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.snapshot`.
* **no-op**: every factory returns a shared null instrument whose
  mutators do nothing.  :data:`NULL_REGISTRY` is the process-wide
  singleton; the execution stack holds it by default so uninstrumented
  runs pay nothing.  The contract the engines keep (enforced by
  ``tests/test_telemetry.py``) is that telemetry is only touched at
  *run boundaries* - never once per instruction - so even an enabled
  registry cannot slow the hot loop.

Metric names are dotted lowercase paths (``sim.runs``, ``engine.block.
blocks_compiled``); the catalog of names the execution stack emits is
documented in ``docs/OBSERVABILITY.md``.  Registering the same name
twice returns the existing instrument; registering it as a different
*type* is an error (one name, one meaning).

Determinism note: everything except :class:`Timer` is a pure function
of simulated work.  Timers record host wall-clock and are therefore
excluded from canonical run manifests (see
:mod:`repro.telemetry.manifest`).
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Timer",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (powers of ten, ``inf`` implied).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """A monotonically increasing count (events, instructions, bytes)."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> dict:
        """JSON-friendly view: ``{"kind", "value"}``."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways (cache occupancy)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Move the gauge by *delta* (either sign)."""
        self.value += delta

    def as_dict(self) -> dict:
        """JSON-friendly view: ``{"kind", "value"}``."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A distribution summarised as cumulative bucket counts + sum/count.

    Buckets are upper bounds checked in order; an observation larger
    than every bound lands in the implicit ``inf`` bucket.  Bounds are
    fixed at registration so two snapshots of the same metric are always
    comparable.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} bucket bounds must be sorted")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + inf bucket
        self.sum: float = 0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly view with bucket bounds and counts."""
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class Timer:
    """Wall-clock duration recorder (a histogram of seconds).

    Use as a context manager::

        with registry.timer("sim.run_seconds"):
            machine.run(entry)

    Timers measure *host* time and are excluded from canonical run
    manifests; they exist for operator-facing throughput numbers.
    """

    __slots__ = ("name", "help", "histogram", "_started")
    kind = "timer"

    #: bucket bounds in seconds, microseconds up to minutes
    TIME_BUCKETS: tuple[float, ...] = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0,
    )

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.histogram = Histogram(name, help, buckets=self.TIME_BUCKETS)
        self._started: float | None = None

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.observe(time.perf_counter() - self._started)
            self._started = None

    def as_dict(self) -> dict:
        """JSON-friendly view (delegates to the backing histogram)."""
        payload = self.histogram.as_dict()
        payload["kind"] = self.kind
        return payload


class _NullInstrument:
    """Shared do-nothing instrument returned by a disabled registry.

    Implements the full mutator surface of every instrument type so
    call sites never need to branch on whether telemetry is enabled.
    """

    __slots__ = ()
    kind = "null"
    name = ""
    help = ""
    value = 0
    sum = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def add(self, delta: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def as_dict(self) -> dict:
        """Empty view; null instruments never appear in snapshots."""
        return {"kind": self.kind}


#: The one shared null instrument; identity-comparable in tests.
_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Namespace of typed metrics with enabled and no-op modes.

    Args:
        enabled: when False, every factory returns the shared null
            instrument and the registry stays permanently empty.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram | Timer] = {}

    # -- factories ----------------------------------------------------------

    def _register(self, name: str, kind: type, factory):
        if not self.enabled:
            return _NULL_INSTRUMENT
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {kind.kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` called *name*."""
        return self._register(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` called *name*."""
        return self._register(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the :class:`Histogram` called *name*."""
        return self._register(name, Histogram, lambda: Histogram(name, help, buckets))

    def timer(self, name: str, help: str = "") -> Timer:
        """Get or create the :class:`Timer` called *name*."""
        return self._register(name, Timer, lambda: Timer(name, help))

    # -- introspection ------------------------------------------------------

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram | Timer]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument called *name*, or None."""
        return self._metrics.get(name)

    def as_dict(self) -> dict:
        """Every metric's JSON view, keyed by name (sorted)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def describe(self) -> list[dict]:
        """Catalog rows ``{"name", "kind", "help"}`` for documentation."""
        return [
            {"name": name, "kind": metric.kind, "help": metric.help}
            for name, metric in sorted(self._metrics.items())
        ]

    def reset(self) -> None:
        """Drop every registered metric (names become reusable)."""
        self._metrics.clear()


#: Process-wide no-op registry; the execution stack's default.
NULL_REGISTRY = MetricsRegistry(enabled=False)
