"""Unified observability layer for the RISC I reproduction.

The paper's whole argument is quantitative - instruction mixes, call
overhead, execution-time ratios - so every part of this repository that
*runs* something reports through one spine:

* :mod:`repro.telemetry.registry` - a typed metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` /
  :class:`Timer`) with a near-zero-overhead no-op mode
  (:data:`NULL_REGISTRY`); the execution stack records into it only at
  run boundaries, never per instruction.
* :mod:`repro.telemetry.manifest` - :class:`RunManifest`, the canonical
  JSON provenance document of one simulation (workload, engine, seed,
  config, all counters, campaign fingerprint), with engine-independent
  ``shared`` fields, byte-stable serialisation, and a SHA-256
  :meth:`~RunManifest.fingerprint`.
* :mod:`repro.telemetry.events` - the JSONL structured-event schema
  unifying the tracer, profiler, fault injector and call-trace
  observers (:class:`TraceEventExporter`, ``events_from_*`` adapters).
* :mod:`repro.telemetry.report` - ``python -m repro.telemetry.report``
  renders manifests to text/Markdown comparison tables.

See ``docs/OBSERVABILITY.md`` for the metrics catalog, the annotated
manifest schema, and the event taxonomy.  Schema stability is gated in
CI (``ci/check_manifest.py``).
"""

from repro.telemetry.events import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    JsonlEventWriter,
    TraceEventExporter,
    events_from_call_trace,
    events_from_injections,
    events_from_journal,
    events_from_profile,
    events_from_schedule,
    events_from_trace,
    read_events,
)
from repro.telemetry.manifest import (
    CAMPAIGN_LEAVES,
    CAMPAIGN_SCHEMA,
    EVALUATION_SCHEMA,
    MANIFEST_SCHEMA,
    ManifestError,
    RunManifest,
    aggregate_manifests,
    capture_manifest,
    schema_paths,
    validate_campaign_manifest,
    validate_manifest,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "CAMPAIGN_LEAVES",
    "CAMPAIGN_SCHEMA",
    "Counter",
    "DEFAULT_BUCKETS",
    "EVALUATION_SCHEMA",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "Gauge",
    "Histogram",
    "JsonlEventWriter",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "RunManifest",
    "Timer",
    "TraceEventExporter",
    "aggregate_manifests",
    "capture_manifest",
    "events_from_call_trace",
    "events_from_injections",
    "events_from_journal",
    "events_from_profile",
    "events_from_schedule",
    "events_from_trace",
    "read_events",
    "schema_paths",
    "validate_campaign_manifest",
    "validate_manifest",
]
