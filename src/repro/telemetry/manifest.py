"""Run manifests: one canonical JSON document per simulation.

A :class:`RunManifest` is the full provenance record of one machine run:
what was executed (workload, entry point, seed), on what configuration
(engine, window file, memory size, trap options), and what happened
(halt reason, result, the complete :class:`~repro.cpu.state.ExecutionStats`
counters, memory traffic, decode-cache behaviour, engine-internal
counters, and - for fault campaigns - the campaign fingerprint).

The document is split into three determinism classes:

``shared``
    Fields every execution engine must agree on bit-for-bit for the
    same (workload, seed, config): the ``run``, ``stats`` and
    ``memory`` sections.  :meth:`RunManifest.shared_json` serialises
    exactly these, and :meth:`RunManifest.fingerprint` hashes them -
    two runs are architecturally identical iff their fingerprints match.
``simulation``
    How the run was simulated: engine name, decode-cache counters,
    engine-internal detail.  Deterministic per engine, but *different*
    between engines (each backend decodes through a different path).
``host``
    Wall-clock seconds and similar host facts.  Never part of any
    canonical serialisation, so manifests aggregate byte-identically
    across worker pools and hosts.

Canonical JSON means ``json.dumps(..., sort_keys=True)`` with default
separators, so byte comparison of two canonical documents is exactly
structural equality.  The schema (field names and types) is gated in CI
by ``ci/check_manifest.py`` against ``ci/manifest_schema.json``; bump
:data:`MANIFEST_SCHEMA` when making an incompatible change.

See ``docs/OBSERVABILITY.md`` for the annotated schema.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.cpu.state import ArchState

__all__ = [
    "MANIFEST_SCHEMA",
    "EVALUATION_SCHEMA",
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_LEAVES",
    "ManifestError",
    "RunManifest",
    "aggregate_manifests",
    "capture_manifest",
    "schema_paths",
    "validate_campaign_manifest",
]

#: Schema tag of a single-run manifest document.
MANIFEST_SCHEMA = "risc1-repro/run-manifest/v1"
#: Schema tag of an aggregated (multi-run) evaluation manifest.
EVALUATION_SCHEMA = "risc1-repro/evaluation-manifest/v1"
#: Schema tag of a fault-campaign manifest (v2: shards/resume/events).
CAMPAIGN_SCHEMA = "risc1-repro/campaign-manifest/v2"


class ManifestError(ValueError):
    """A manifest document failed schema validation."""


@dataclass
class RunManifest:
    """Provenance + measurement record of one simulation run."""

    #: workload name (benchmark name, "asm", or caller-supplied label)
    workload: str
    #: execution backend that produced the run ("reference"/"fast"/"block")
    engine: str
    #: halt reason name (:class:`~repro.cpu.state.HaltReason`), or "RUNNING"
    halt: str
    #: entry procedure's return value (unsigned 32-bit view)
    result: int
    #: machine configuration (windows, memory size, trap options)
    config: dict = field(default_factory=dict)
    #: full :meth:`~repro.cpu.state.ExecutionStats.as_dict` counters
    stats: dict = field(default_factory=dict)
    #: memory-traffic counters + console byte count
    memory: dict = field(default_factory=dict)
    #: :meth:`~repro.isa.decode.CachingDecoder.cache_info` counters
    decode_cache: dict = field(default_factory=dict)
    #: engine-internal counters (:meth:`ExecutionEngine.telemetry_snapshot`)
    engine_detail: dict = field(default_factory=dict)
    #: RNG seed that determined the run, when one exists
    seed: int | None = None
    #: entry PC the run started from
    entry: int = 0
    #: campaign linkage (seed, injections, fingerprint), when applicable
    campaign: dict | None = None
    #: host facts (wall_seconds, compile_cache counters); excluded from
    #: every canonical form
    host: dict = field(default_factory=dict)

    # -- serialisation -------------------------------------------------------

    def shared_dict(self) -> dict:
        """The engine-independent portion of the document."""
        return {
            "schema": MANIFEST_SCHEMA,
            "run": {
                "workload": self.workload,
                "seed": self.seed,
                "entry": self.entry,
                "config": dict(self.config),
                "result": self.result,
                "halt": self.halt,
            },
            "stats": dict(self.stats),
            "memory": dict(self.memory),
            "campaign": dict(self.campaign) if self.campaign else None,
        }

    def as_dict(self, *, include_host: bool = True) -> dict:
        """The full document (optionally with the ``host`` section)."""
        doc = self.shared_dict()
        doc["simulation"] = {
            "engine": self.engine,
            "decode_cache": dict(self.decode_cache),
            "engine_detail": dict(self.engine_detail),
        }
        if include_host:
            doc["host"] = dict(self.host)
        return doc

    def shared_json(self) -> str:
        """Canonical JSON of the shared portion (engine-independent)."""
        return json.dumps(self.shared_dict(), sort_keys=True)

    def canonical_json(self) -> str:
        """Canonical JSON of everything deterministic (no ``host``)."""
        return json.dumps(self.as_dict(include_host=False), sort_keys=True)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Pretty JSON of the full document, for files humans read."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def fingerprint(self) -> str:
        """SHA-256 over :meth:`shared_json`.

        Equal fingerprints <=> architecturally identical runs, whatever
        engine (or worker pool) simulated them.
        """
        return hashlib.sha256(self.shared_json().encode()).hexdigest()

    # -- parsing / validation ------------------------------------------------

    @classmethod
    def from_dict(cls, doc: dict) -> "RunManifest":
        """Rebuild a manifest from its document form (validates first)."""
        problems = validate_manifest(doc)
        if problems:
            raise ManifestError("; ".join(problems))
        run = doc["run"]
        simulation = doc.get("simulation", {})
        return cls(
            workload=run["workload"],
            engine=simulation.get("engine", ""),
            halt=run["halt"],
            result=run["result"],
            config=dict(run["config"]),
            stats=dict(doc["stats"]),
            memory=dict(doc["memory"]),
            decode_cache=dict(simulation.get("decode_cache", {})),
            engine_detail=dict(simulation.get("engine_detail", {})),
            seed=run["seed"],
            entry=run["entry"],
            campaign=dict(doc["campaign"]) if doc.get("campaign") else None,
            host=dict(doc.get("host", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse and validate a JSON manifest document."""
        return cls.from_dict(json.loads(text))


#: Required ``stats`` counters and their type (all non-negative ints).
_STATS_COUNTERS = (
    "instructions", "cycles", "calls", "returns", "taken_jumps",
    "delay_slots", "delay_slot_nops", "window_overflows",
    "window_underflows", "max_call_depth", "traps",
)
#: Required ``memory`` counters.
_MEMORY_COUNTERS = ("inst_reads", "data_reads", "data_writes", "console_bytes")
#: Halt values a finished run may report.
_HALT_NAMES = frozenset({
    "RETURNED", "STEP_LIMIT", "EXPLICIT", "TRAPPED",
    "CYCLE_LIMIT", "WALL_CLOCK_LIMIT", "RUNNING",
})


def validate_manifest(doc: Any) -> list[str]:
    """Check *doc* against the run-manifest schema; returns problems.

    An empty list means the document is valid.  The check is structural
    (required keys, value types, counter non-negativity), not semantic.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"manifest must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"schema must be {MANIFEST_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    run = doc.get("run")
    if not isinstance(run, dict):
        problems.append("missing 'run' section")
    else:
        if not isinstance(run.get("workload"), str) or not run.get("workload"):
            problems.append("run.workload must be a non-empty string")
        if not isinstance(run.get("entry"), int):
            problems.append("run.entry must be an integer")
        if run.get("seed") is not None and not isinstance(run["seed"], int):
            problems.append("run.seed must be an integer or null")
        if not isinstance(run.get("config"), dict):
            problems.append("run.config must be an object")
        if not isinstance(run.get("result"), int):
            problems.append("run.result must be an integer")
        if run.get("halt") not in _HALT_NAMES:
            problems.append(f"run.halt must be one of {sorted(_HALT_NAMES)}")
    stats = doc.get("stats")
    if not isinstance(stats, dict):
        problems.append("missing 'stats' section")
    else:
        for name in _STATS_COUNTERS:
            value = stats.get(name)
            if not isinstance(value, int) or value < 0:
                problems.append(f"stats.{name} must be a non-negative integer")
        for name in ("by_category", "by_opcode", "by_trap_cause"):
            if not isinstance(stats.get(name), dict):
                problems.append(f"stats.{name} must be an object")
    memory = doc.get("memory")
    if not isinstance(memory, dict):
        problems.append("missing 'memory' section")
    else:
        for name in _MEMORY_COUNTERS:
            value = memory.get(name)
            if not isinstance(value, int) or value < 0:
                problems.append(f"memory.{name} must be a non-negative integer")
    campaign = doc.get("campaign")
    if campaign is not None and not isinstance(campaign, dict):
        problems.append("campaign must be an object or null")
    simulation = doc.get("simulation")
    if simulation is not None:
        if not isinstance(simulation, dict):
            problems.append("simulation must be an object")
        else:
            if not isinstance(simulation.get("engine"), str):
                problems.append("simulation.engine must be a string")
            for name in ("decode_cache", "engine_detail"):
                if not isinstance(simulation.get(name), dict):
                    problems.append(f"simulation.{name} must be an object")
    host = doc.get("host")
    if host is not None and not isinstance(host, dict):
        problems.append("host must be an object")
    return problems


#: Campaign-manifest sections whose *keys* are data, not schema
#: (benchmark names, fault-target names, event kinds).
CAMPAIGN_LEAVES = frozenset({"config", "golden", "outcomes_by_target", "events"})

#: Required non-negative counters of the campaign ``resume`` section.
_RESUME_COUNTERS = (
    "resumed_trials", "executed_trials", "retries", "timeouts",
    "infra_errors", "pool_restarts",
)
#: Required fields of the campaign ``summary`` section (int counters
#: checked separately).
_SUMMARY_COUNTERS = (
    "masked", "detected", "silent_corruption", "timeout", "crash",
    "infra_error",
)


def validate_campaign_manifest(doc: Any) -> list[str]:
    """Check *doc* against the campaign-manifest (v2) schema.

    Returns a list of problems (empty = valid).  Structural like
    :func:`validate_manifest`: required sections, value types, counter
    non-negativity, and the shard invariants (``sizes`` and
    ``fingerprints`` are parallel lists; sizes sum to the injection
    count on an unsharded or fully-merged manifest is *not* required,
    since a single-shard manifest legitimately covers one slice).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"campaign manifest must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != CAMPAIGN_SCHEMA:
        problems.append(
            f"schema must be {CAMPAIGN_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("config"), dict):
        problems.append("missing 'config' section")
    golden = doc.get("golden")
    if not isinstance(golden, dict):
        problems.append("missing 'golden' section")
    else:
        for name, run in golden.items():
            if not isinstance(run, dict):
                problems.append(f"golden.{name} must be an object")
                continue
            for key in ("result", "instructions", "cycles"):
                if not isinstance(run.get(key), int):
                    problems.append(f"golden.{name}.{key} must be an integer")
    outcomes = doc.get("outcomes_by_target")
    if not isinstance(outcomes, dict):
        problems.append("missing 'outcomes_by_target' section")
    else:
        for target, counts in outcomes.items():
            if not isinstance(counts, dict):
                problems.append(f"outcomes_by_target.{target} must be an object")
                continue
            for outcome, value in counts.items():
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"outcomes_by_target.{target}.{outcome} "
                        "must be a non-negative integer"
                    )
    shards = doc.get("shards")
    if not isinstance(shards, dict):
        problems.append("missing 'shards' section")
    else:
        count = shards.get("count")
        if not isinstance(count, int) or count < 1:
            problems.append("shards.count must be a positive integer")
        sizes = shards.get("sizes")
        fingerprints = shards.get("fingerprints")
        if not isinstance(sizes, list) or not all(
            isinstance(size, int) and size >= 0 for size in sizes
        ):
            problems.append("shards.sizes must be a list of non-negative integers")
        if not isinstance(fingerprints, list) or not all(
            isinstance(fp, str) for fp in fingerprints
        ):
            problems.append("shards.fingerprints must be a list of strings")
        if (
            isinstance(sizes, list)
            and isinstance(fingerprints, list)
            and len(sizes) != len(fingerprints)
        ):
            problems.append(
                "shards.sizes and shards.fingerprints must be parallel lists"
            )
    resume = doc.get("resume")
    if not isinstance(resume, dict):
        problems.append("missing 'resume' section")
    else:
        for name in _RESUME_COUNTERS:
            value = resume.get(name)
            if not isinstance(value, int) or value < 0:
                problems.append(f"resume.{name} must be a non-negative integer")
    events = doc.get("events")
    if not isinstance(events, dict):
        problems.append("missing 'events' section")
    else:
        for kind, value in events.items():
            if not isinstance(value, int) or value < 0:
                problems.append(f"events.{kind} must be a non-negative integer")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing 'summary' section")
    else:
        if summary.get("seed") is not None and not isinstance(summary["seed"], int):
            problems.append("summary.seed must be an integer or null")
        if not isinstance(summary.get("injections"), int):
            problems.append("summary.injections must be an integer")
        if not isinstance(summary.get("benchmarks"), list):
            problems.append("summary.benchmarks must be a list")
        for name in _SUMMARY_COUNTERS:
            value = summary.get(name)
            if not isinstance(value, int) or value < 0:
                problems.append(f"summary.{name} must be a non-negative integer")
        fingerprint = summary.get("fingerprint")
        if not isinstance(fingerprint, str) or len(fingerprint) != 64:
            problems.append("summary.fingerprint must be a 64-char hex digest")
    return problems


def capture_manifest(
    machine: "ArchState",
    *,
    workload: str = "unnamed",
    seed: int | None = None,
    entry: int = 0,
    campaign: dict | None = None,
    wall_seconds: float | None = None,
) -> RunManifest:
    """Build the :class:`RunManifest` of a (finished) machine run.

    Reads only public accessors (:meth:`ArchState.counters_snapshot`,
    :meth:`ArchState.decode_cache_stats`, the engine's
    ``telemetry_snapshot``), so anything the manifest reports is equally
    available to ad-hoc tooling.
    """
    counters = machine.counters_snapshot()
    engine = getattr(machine, "engine", None)
    engine_name = getattr(engine, "name", "none")
    engine_detail: dict = {}
    snapshot = getattr(engine, "telemetry_snapshot", None)
    if callable(snapshot):
        engine_detail = snapshot()
    host: dict = {}
    if wall_seconds is None:
        wall_seconds = getattr(machine, "last_run_wall_seconds", None)
    if wall_seconds is not None:
        host["wall_seconds"] = wall_seconds
    # Compile-cache counters make warm-process reuse (a service worker
    # serving its Nth job) measurable per run.  They describe the host
    # process, not the simulated run, so they live in the host section:
    # two engines - or a cold and a warm worker - still agree on every
    # canonical byte.
    from repro.workloads.cache import compile_cache_info

    host["compile_cache"] = compile_cache_info()
    return RunManifest(
        workload=workload,
        engine=engine_name,
        halt=machine.halted.name if machine.halted is not None else "RUNNING",
        result=machine.result,
        config={
            "num_windows": machine.num_windows,
            "use_windows": machine.use_windows,
            "memory_size": machine.memory.size,
            "strict_traps": machine.strict_traps,
            "trap_on_overflow": machine.trap_on_overflow,
            "record_call_trace": machine.record_call_trace,
        },
        stats=counters["stats"],
        memory=counters["memory"],
        decode_cache=counters["decode_cache"],
        engine_detail=engine_detail,
        seed=seed,
        entry=entry,
        campaign=campaign,
        host=host,
    )


def aggregate_manifests(manifests: list[RunManifest]) -> dict:
    """Combine per-run manifests into one evaluation-manifest document.

    Runs are ordered by ``(workload, engine)`` and serialised without
    their ``host`` sections, so the aggregate of a worker pool is
    byte-identical to the serial aggregate: parallelism can only change
    wall-clock, never the document.
    """
    ordered = sorted(manifests, key=lambda m: (m.workload, m.engine))
    return {
        "schema": EVALUATION_SCHEMA,
        "runs": [m.as_dict(include_host=False) for m in ordered],
        "count": len(ordered),
        "fingerprints": {
            f"{m.workload}/{m.engine}": m.fingerprint() for m in ordered
        },
    }


#: Run-manifest sections whose *keys* are data, not schema.
_RUN_MANIFEST_LEAVES = frozenset({
    "stats.by_category", "stats.by_opcode", "stats.by_trap_cause",
    "simulation.engine_detail", "run.config", "campaign", "host",
})


def schema_paths(
    doc: Any, prefix: str = "", leaves: frozenset[str] | None = None
) -> list[str]:
    """Sorted key paths of *doc* (``run.config.num_windows``, ...).

    Dict *values* under the variable-content sections (opcode counters,
    engine detail) are not schema, so recursion stops at the *leaves*
    paths: their presence is schema, their keys are data.  The default
    leaf set fits run manifests (``stats.by_*``,
    ``simulation.engine_detail``, ``run.config``, ``campaign``,
    ``host``); pass :data:`CAMPAIGN_LEAVES` for campaign manifests,
    whose data-keyed sections are benchmark names, fault targets, and
    event kinds.  Used by ``ci/check_manifest.py`` to pin schema
    stability.
    """
    if leaves is None:
        leaves = _RUN_MANIFEST_LEAVES
    paths: list[str] = []
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.append(path)
            if path not in leaves:
                paths.extend(schema_paths(value, path, leaves))
    return sorted(paths)
