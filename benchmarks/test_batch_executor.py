"""Throughput of the numpy lockstep executor against serial scalar runs.

One "trial" is a full run of a small call-heavy workload (~455 dynamic
instructions) from reset to halt - the shape a fault campaign executes
thousands of times.  Each lane count times the same N trials twice:
once stepped serially on the reference interpreter, once as lanes of
one :class:`repro.cpu.batch.BatchExecutor`, so the serial/batch mean
ratio is a host-independent speedup (the ``batch-vs-serial`` entry in
``ci/perf_baseline.json`` gates the N=256 point).

CI runs this file with ``--benchmark-json BENCH_batch.json``; the whole
module skips when numpy is absent (``pip install .[batch]``).
"""

import pytest

from repro.cpu import batch
from repro.workloads.cache import compile_cached

pytestmark = pytest.mark.skipif(
    not batch.available(), reason="numpy not installed (pip install .[batch])"
)

SOURCE = """
int mix(int a, int b) {
    return a + b + (a - (b + b));
}

int main() {
    int s = 1;
    int i;
    for (i = 0; i < 20; i = i + 1) {
        s = mix(s, i) + 1;
    }
    return s;
}
"""
EXPECTED_RESULT = 1048596

#: 64 KiB per lane keeps the N=4096 image matrix at 256 MB.
MEMORY_SIZE = 1 << 16
LANE_COUNTS = (16, 256, 4096)
#: Serial N=4096 costs ~10s; one round is plenty for a ratio gate.
ROUNDS = {16: 5, 256: 3, 4096: 1}


def _fresh_machines(n):
    compiled = compile_cached(SOURCE)
    machines = []
    for _ in range(n):
        machine = compiled.make_machine(memory_size=MEMORY_SIZE)
        machine.reset(compiled.program.entry)
        machines.append(machine)
    return machines


def _check(machines):
    for machine in machines:
        assert machine.halted is not None
        assert machine.result == EXPECTED_RESULT


@pytest.mark.parametrize("n", LANE_COUNTS)
def test_serial_reference_throughput(benchmark, n):
    def run(machines):
        for machine in machines:
            while machine.halted is None:
                machine.step()
        return machines

    machines = benchmark.pedantic(
        run, setup=lambda: ((_fresh_machines(n),), {}),
        rounds=ROUNDS[n], iterations=1,
    )
    _check(machines)
    benchmark.extra_info["lanes"] = n
    benchmark.extra_info["mode"] = "serial"


@pytest.mark.parametrize("n", LANE_COUNTS)
def test_batch_lockstep_throughput(benchmark, n):
    def run(machines):
        batch.run_batch(machines)
        return machines

    machines = benchmark.pedantic(
        run, setup=lambda: ((_fresh_machines(n),), {}),
        rounds=ROUNDS[n], iterations=1,
    )
    _check(machines)
    benchmark.extra_info["lanes"] = n
    benchmark.extra_info["mode"] = "batch"
