"""M2 - executed instruction counts relative to VAX."""

from repro.evaluation import m2_instruction_counts


def test_m2_instruction_counts(once):
    table = once(m2_instruction_counts.run)
    print("\n" + table.render())
    ratios = []
    for row in table.rows:
        name = row[0]
        ratios.append(float(row[-3].rstrip("x")))
        risc_cpi = float(row[-2])
        vax_cpi = float(row[-1])
        # RISC I retires roughly one instruction per cycle (traps and
        # memory ops push it a bit past 1 on pathological recursion)...
        assert risc_cpi < 3.0, (name, risc_cpi)
        # ...while the microcoded VAX spends several cycles on each.
        assert vax_cpi > 2.5, (name, vax_cpi)
        assert vax_cpi > risc_cpi, name
    # The instruction-count trade cuts both ways: compute-bound code runs
    # more RISC instructions (simple ops compose complex ones), while
    # call-heavy code can run FEWER (windows delete the save/restore
    # sequences the CISC must execute).  Both regimes must be present.
    assert any(ratio > 1.1 for ratio in ratios), ratios
    assert any(ratio < 1.0 for ratio in ratios), ratios
