"""M1 - dynamic instruction mix over the suite."""

from repro.evaluation import m1_instruction_mix


def test_m1_instruction_mix(once):
    table = once(m1_instruction_mix.run)
    print("\n" + table.render())
    for row in table.rows:
        name = row[0]
        alu, load, store, jump, misc = (float(cell) for cell in row[1:])
        total = alu + load + store + jump + misc
        assert abs(total - 100.0) < 0.5, name
        # the paper's design point: windows keep memory traffic a minority
        assert load + store < 45.0, name
        # ALU (register-to-register) work dominates
        assert alu > 35.0, name
