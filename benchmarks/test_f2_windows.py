"""F2 - overlapped register-window figure."""

from repro.evaluation import f2_windows
from repro.isa.registers import NUM_WINDOWS, physical_index


def test_f2_windows(once):
    text = once(f2_windows.run)
    print("\n" + text)
    assert "138" in text
    # The rendered identity must hold for every window pair.
    for window in range(NUM_WINDOWS):
        caller = (window + 1) % NUM_WINDOWS
        for k in range(6):
            assert physical_index(caller, 10 + k) == physical_index(window, 26 + k)
