"""T2 - machine characteristics comparison."""

from repro.evaluation import t2_machines


def test_t2_machines(once):
    table = once(t2_machines.run)
    print("\n" + table.render())
    rows = {row[0]: row for row in table.rows}
    risc = rows["RISC I"]
    # RISC I: fewest instructions, zero microcode, single instruction size.
    assert risc[2] == min(row[2] for row in table.rows)
    assert risc[3] == 0
    assert all(row[3] > 0 for name, row in rows.items() if name != "RISC I")
    assert risc[4] == "32-32"
