"""T4 - program size relative to VAX over the full suite."""

from repro.evaluation import t4_code_size
from repro.evaluation.common import run_benchmark_matrix, RISC_NAME, VAX_NAME


def test_t4_code_size(once):
    table = once(t4_code_size.run)
    print("\n" + table.render())
    records = run_benchmark_matrix(None)
    benchmarks = sorted({bench for bench, __ in records})
    ratios = [
        records[(bench, RISC_NAME)].code_bytes / records[(bench, VAX_NAME)].code_bytes
        for bench in benchmarks
    ]
    mean_ratio = sum(ratios) / len(ratios)
    # Paper shape: RISC I code is modestly larger than VAX (roughly
    # 1.2-1.5x on average), never dramatically smaller or >2.5x.
    assert 1.1 <= mean_ratio <= 1.7, mean_ratio
    assert all(0.8 <= ratio <= 2.5 for ratio in ratios), ratios
