"""Host-side performance of the simulators themselves.

Unlike the table/figure benches (one-shot experiment regeneration),
these time the Python simulators with real statistics - useful for
catching performance regressions in the hot interpreter loops.

CI runs this file with ``--benchmark-json BENCH_simulator.json`` and
feeds the result to ``ci/check_perf.py``, which gates on the
machine-independent fast-vs-reference speedup ratio (see
``ci/perf_baseline.json``).
"""

import time

from repro.baselines import VaxTraits, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.hll import run_program
from repro.workloads import benchmark

SOURCE = benchmark("towers").source


def _risc_run(compiled, engine):
    machine = compiled.make_machine(engine=engine)
    machine.run(compiled.program.entry)
    return machine.stats.instructions


def test_risc_simulator_speed(benchmark):
    compiled = compile_for_risc(SOURCE)
    instructions = benchmark(lambda: _risc_run(compiled, "reference"))
    benchmark.extra_info["engine"] = "reference"
    benchmark.extra_info["instructions"] = instructions
    assert instructions > 10_000


def test_fast_engine_simulator_speed(benchmark):
    compiled = compile_for_risc(SOURCE)
    instructions = benchmark(lambda: _risc_run(compiled, "fast"))
    benchmark.extra_info["engine"] = "fast"
    benchmark.extra_info["instructions"] = instructions
    assert instructions > 10_000


def test_fast_engine_fusion_simulator_speed(benchmark):
    """Fast engine with every proved macro-op pair armed.

    Paired with the plain fast-engine benchmark by the fusion-overhead
    baseline entry: executing proved pairs as single fused thunks must
    not cost measurable dispatch overhead.
    """
    from repro.analysis.fusion import analyze_program, arm_machine

    compiled = compile_for_risc(SOURCE)
    # Analysis is a one-time static cost; time the armed execution only.
    report = analyze_program(compiled.program, name="towers")

    def run():
        machine = compiled.make_machine(engine="fast")
        arm_machine(machine, report)
        machine.run(compiled.program.entry)
        return machine.stats.instructions, machine.engine.fused_dispatches

    instructions, fused = benchmark(run)
    benchmark.extra_info["engine"] = "fast+fusion"
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["fused_dispatches"] = fused
    assert instructions > 10_000
    assert 0 < fused < instructions


def test_block_engine_simulator_speed(benchmark):
    compiled = compile_for_risc(SOURCE)
    instructions = benchmark(lambda: _risc_run(compiled, "block"))
    benchmark.extra_info["engine"] = "block"
    benchmark.extra_info["instructions"] = instructions
    assert instructions > 10_000


def test_trace_engine_simulator_speed(benchmark):
    compiled = compile_for_risc(SOURCE)
    instructions = benchmark(lambda: _risc_run(compiled, "trace"))
    benchmark.extra_info["engine"] = "trace"
    benchmark.extra_info["instructions"] = instructions
    assert instructions > 10_000


def test_fast_engine_speedup_at_least_2x():
    """The pre-decoded engine's reason to exist, asserted directly.

    Timed with best-of-N wall clocks rather than the benchmark fixture
    (which cannot time two competing subjects in one test).  The ratio
    is host-independent; 2x leaves ample slack under the measured ~2.7x.
    """
    compiled = compile_for_risc(SOURCE)

    def best_of(engine, rounds=3):
        _risc_run(compiled, engine)  # warm decode/thunk caches
        best = float("inf")
        for __ in range(rounds):
            start = time.perf_counter()
            _risc_run(compiled, engine)
            best = min(best, time.perf_counter() - start)
        return best

    reference = best_of("reference")
    fast = best_of("fast")
    assert reference / fast >= 2.0, (
        f"fast engine only {reference / fast:.2f}x faster "
        f"({reference * 1e3:.1f}ms vs {fast * 1e3:.1f}ms)"
    )


def test_block_engine_speedup_at_least_2x_over_fast():
    """The block compiler's reason to exist, asserted directly.

    Same best-of-N scheme as the fast-engine assertion.  Measured ~2.6x
    over the fast engine (~9x over reference) on the towers workload;
    2.0x is the issue's target with the same slack philosophy as above.
    """
    compiled = compile_for_risc(SOURCE)

    def best_of(engine, rounds=3):
        _risc_run(compiled, engine)  # warm decode/thunk/block caches
        best = float("inf")
        for __ in range(rounds):
            start = time.perf_counter()
            _risc_run(compiled, engine)
            best = min(best, time.perf_counter() - start)
        return best

    fast = best_of("fast")
    block = best_of("block")
    assert fast / block >= 2.0, (
        f"block engine only {fast / block:.2f}x faster than fast "
        f"({fast * 1e3:.1f}ms vs {block * 1e3:.1f}ms)"
    )


def test_trace_engine_speedup_at_least_10x():
    """The trace tier's reason to exist, asserted directly.

    Same best-of-N scheme as the other direct assertions.  Measured
    ~32x over reference on towers; the 25x acceptance bar lives in
    ``ci/check_perf.py`` (trace-vs-reference), while this in-suite
    floor is set at 10x so slow shared-CI hosts cannot flake it.
    """
    compiled = compile_for_risc(SOURCE)

    def best_of(engine, rounds=3):
        _risc_run(compiled, engine)  # warm decode/trace caches
        best = float("inf")
        for __ in range(rounds):
            start = time.perf_counter()
            _risc_run(compiled, engine)
            best = min(best, time.perf_counter() - start)
        return best

    reference = best_of("reference")
    trace = best_of("trace")
    assert reference / trace >= 10.0, (
        f"trace engine only {reference / trace:.2f}x faster "
        f"({reference * 1e3:.1f}ms vs {trace * 1e3:.1f}ms)"
    )


def test_cisc_simulator_speed(benchmark):
    traits = VaxTraits()
    generated = compile_for_cisc(compile_to_ir(SOURCE), traits)

    def run():
        executor = CiscExecutor(generated.program, traits)
        executor.run()
        return executor.instructions_executed

    instructions = benchmark(run)
    assert instructions > 5_000


def test_interpreter_speed(benchmark):
    result = benchmark(lambda: run_program(SOURCE, max_ops=20_000_000).value)
    assert result == 1023


def test_compiler_speed(benchmark):
    compiled = benchmark(lambda: compile_for_risc(SOURCE))
    assert compiled.code_size_bytes > 0
