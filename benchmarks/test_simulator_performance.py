"""Host-side performance of the simulators themselves.

Unlike the table/figure benches (one-shot experiment regeneration),
these time the Python simulators with real statistics - useful for
catching performance regressions in the hot interpreter loops.
"""

from repro.baselines import VaxTraits, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.hll import run_program
from repro.workloads import benchmark

SOURCE = benchmark("towers").source


def test_risc_simulator_speed(benchmark):
    compiled = compile_for_risc(SOURCE)

    def run():
        machine = compiled.make_machine()
        machine.run(compiled.program.entry)
        return machine.stats.instructions

    instructions = benchmark(run)
    assert instructions > 10_000


def test_cisc_simulator_speed(benchmark):
    traits = VaxTraits()
    generated = compile_for_cisc(compile_to_ir(SOURCE), traits)

    def run():
        executor = CiscExecutor(generated.program, traits)
        executor.run()
        return executor.instructions_executed

    instructions = benchmark(run)
    assert instructions > 5_000


def test_interpreter_speed(benchmark):
    result = benchmark(lambda: run_program(SOURCE, max_ops=20_000_000).value)
    assert result == 1023


def test_compiler_speed(benchmark):
    compiled = benchmark(lambda: compile_for_risc(SOURCE))
    assert compiled.code_size_bytes > 0
