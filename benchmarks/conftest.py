"""Shared configuration for the experiment benchmarks.

Every bench regenerates one of the paper's tables/figures exactly once
(``rounds=1``) - the interesting output is the table itself plus the
shape assertions, not statistical timing of the harness.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment a single time under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
