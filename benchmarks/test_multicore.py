"""Multicore performance: tier speedups and interrupt-latency cost.

Two benchmark families, both shapes for ``ci/check_perf.py`` ratios
(absolute times vary across hosts; same-process ratios do not):

* the 4-core ``producer_consumer`` run - the lock-contention workload -
  timed on the reference, fast, and block tiers.  The compiled tiers
  must keep their speedup even though every slice re-enters the engine
  through the interleaver (the ratio floor catches an accidentally
  quadratic slice restart);
* the 4-core ``timer_ticks`` run - the interrupt-latency workload -
  timed on reference and fast.  Interrupt-pending fallback forces
  reference stepping, so fast may not *beat* reference here; the entry
  gates that delivery machinery never makes it pathologically slower.

The latency shape assertions are architectural, not timed: every
boundary-to-boundary sample is bounded by the scheduler quantum, which
is the delivery-granularity guarantee ``docs/MULTICORE.md`` documents.
"""

import pytest

from repro.multicore import DEFAULT_QUANTUM, build_scenario, run_scenario
from repro.multicore.scenarios import scenario


@pytest.fixture(scope="module", autouse=True)
def _warm_images():
    """Compile scenario images once so timing excludes the compiler."""
    build_scenario("producer_consumer")
    build_scenario("timer_ticks")


def _contention(engine):
    sim = run_scenario("producer_consumer", num_cores=4, engine=engine)
    assert not sim.watchdog_expired
    assert not scenario("producer_consumer").validate(sim.results, 4)
    return sim


def _interrupts(engine):
    sim = run_scenario("timer_ticks", num_cores=4, engine=engine)
    assert sim.device.interrupts_delivered == 16
    samples = sim.device.latency_samples
    assert len(samples) == 16
    assert all(0 < sample <= DEFAULT_QUANTUM for sample in samples)
    return sim


def test_multicore_reference_contention(once):
    once(_contention, "reference")


def test_multicore_fast_contention(once):
    once(_contention, "fast")


def test_multicore_block_contention(once):
    once(_contention, "block")


def test_multicore_interrupt_latency_reference(once):
    once(_interrupts, "reference")


def test_multicore_interrupt_latency_fast(once):
    once(_interrupts, "fast")
