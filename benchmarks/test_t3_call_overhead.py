"""T3 - procedure call/return overhead."""

from repro.evaluation import t3_call_overhead


def test_t3_call_overhead(once):
    table = once(t3_call_overhead.run)
    print("\n" + table.render())
    rows = {row[0]: row for row in table.rows}
    risc_instr, risc_refs = rows["RISC I"][1], rows["RISC I"][2]
    # Windows make the call itself nearly free of memory traffic...
    assert risc_refs < 2.0
    # ...while every conventional machine moves many words per call.
    for name, row in rows.items():
        if name == "RISC I":
            continue
        assert row[2] >= 6.0, f"{name} call moved too little memory"
        assert row[1] > risc_instr
