"""T6 - register-window overflow rates across the suite."""

from repro.evaluation import t6_window_overflow


def test_t6_window_overflow(once):
    table = once(t6_window_overflow.run)
    print("\n" + table.render())
    rates_8 = {}
    for row in table.rows:
        rates_8[row[0]] = float(row[4].rstrip("%"))
    # With 8 windows, ordinary programs trap on only a few percent of
    # calls; Ackermann is the acknowledged pathological exception.
    ordinary = [name for name in rates_8 if name != "ackermann"]
    assert all(rates_8[name] < 10.0 for name in ordinary), rates_8
    assert rates_8["ackermann"] > 20.0
