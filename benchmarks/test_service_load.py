"""Requests/sec of the execution service, cold vs warm.

Drives a live :func:`repro.service.server.serve_in_thread` stack over
real TCP and times the same four-job stream twice: *cold* (every
request simulates on the reference engine) and *warm* (every request is
a manifest-store hit).  CI runs this file with ``--benchmark-json
BENCH_service.json`` and ``ci/check_perf.py`` gates the warm-vs-cold
mean-time ratio against ``ci/service_baseline.json`` - the committed
floor is the repo's "warm hits are >= 50x cold requests/sec"
acceptance bar.  Absolute req/sec varies with the host; the ratio of
two request streams against the same in-process server does not.

A third benchmark reports the mixed concurrent load (4 clients, cold
and warm interleaved) with p50/p99 latency in ``extra_info`` for the
trajectory record; it asserts correctness (no errors, expected cache
mix) but is not ratio-gated.
"""

import pytest

from repro.service.client import ServiceClient
from repro.service.loadgen import job_stream, run_load
from repro.service.server import serve_in_thread
from repro.service.store import ManifestStore

#: Requests per timed round; identical for cold and warm so the
#: mean-time ratio is exactly the req/sec ratio.
STREAM = 4
WORKLOAD = "towers"
ENGINE = "reference"  # keep cold requests expensive and host-stable


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    handle = serve_in_thread(
        store=ManifestStore(str(tmp_path_factory.mktemp("store"))),
        workers=2,
    )
    yield handle
    handle.stop()


def _submit_stream(client, seed_base):
    """Submit the four-job stream; returns the cache outcomes."""
    outcomes = []
    for index in range(STREAM):
        status, doc = client.submit({
            "workload": WORKLOAD, "engine": ENGINE,
            "seed": seed_base + index,
        })
        assert status == 200, doc
        outcomes.append(doc["cache"])
    return outcomes


def test_service_cold_requests(once, service):
    """Four never-seen jobs: every request simulates (rounds=1 - a
    second round would be warm)."""
    with ServiceClient("127.0.0.1", service.port) as client:
        outcomes = once(_submit_stream, client, 0)
    assert outcomes == ["miss"] * STREAM


def test_service_warm_requests(benchmark, service):
    """The same four jobs, pre-warmed: every request is a store hit."""
    with ServiceClient("127.0.0.1", service.port) as client:
        cold = _submit_stream(client, 100)  # populate the store
        assert cold == ["miss"] * STREAM
        outcomes = benchmark.pedantic(
            _submit_stream, args=(client, 100), rounds=5, iterations=1
        )
    assert outcomes == ["hit"] * STREAM


def test_service_mixed_concurrent_load(once, benchmark, service):
    """4 clients, interleaved cold/warm: the production-shaped mix."""
    jobs = job_stream(
        workload=WORKLOAD, engine=ENGINE, unique=3, repeats=3,
        seed_base=200,
    )
    report = once(
        run_load, "127.0.0.1", service.port, jobs, clients=4
    )
    assert report.errors == 0
    assert set(report.by_status) == {200}
    assert report.by_cache.get("miss", 0) == 3  # one simulation per seed
    warm = (report.by_cache.get("hit", 0)
            + report.by_cache.get("coalesced", 0))
    assert warm == 6
    benchmark.extra_info["requests_per_sec"] = round(
        report.requests_per_sec, 1
    )
    benchmark.extra_info["p50_ms"] = round(report.p50_ms, 3)
    benchmark.extra_info["p99_ms"] = round(report.p99_ms, 3)
    benchmark.extra_info["by_cache"] = dict(report.by_cache)
    print(report.render())
