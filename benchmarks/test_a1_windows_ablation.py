"""A1 - register windows vs flat register file."""

from repro.evaluation import ablations
from repro.evaluation.common import FAST_SUBSET


def test_a1_windows_ablation(once):
    table = once(ablations.a1_windows, FAST_SUBSET)
    print("\n" + table.render())
    for row in table.rows:
        name, cyc_win, cyc_flat, __, refs_win, refs_flat = row
        assert refs_flat > refs_win, name
        if name == "towers":  # pure call/return: windows shine brightest
            assert cyc_flat / cyc_win > 2.0
