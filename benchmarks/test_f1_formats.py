"""F1 - instruction-format figure."""

from repro.evaluation import f1_formats
from repro.isa.formats import FORMAT_LAYOUTS
from repro.isa.opcodes import Format


def test_f1_formats(once):
    text = once(f1_formats.run)
    print("\n" + text)
    assert "opcode" in text and "imm19" in text
    # Both formats must tile exactly 32 bits with no gaps or overlaps.
    for layout in FORMAT_LAYOUTS.values():
        covered = sorted((f.lo, f.hi) for f in layout)
        assert covered[0][0] == 0
        assert covered[-1][1] == 31
        for (___, prev_hi), (lo, __) in zip(covered, covered[1:]):
            assert lo == prev_hi + 1
