"""A3 - window-overlap size sweep."""

from repro.evaluation import ablations


def test_a3_overlap_sweep(once):
    table = once(ablations.a3_overlap)
    print("\n" + table.render())
    overlaps = [0, 2, 4, 6, 8]
    for row in table.rows:
        values = dict(zip(overlaps, (float(cell) for cell in row[1:])))
        # zero overlap forces argument copies through memory: never optimal
        assert values[0] > min(values.values()), row
        if row[0] == "ackermann":
            # pathological recursion spills constantly, so bigger spill
            # units dominate and the overlap sweet spot shifts down -
            # the paper acknowledges Ackermann as the outlier.
            continue
        # the design point (6) should be within 2 words/call of the best
        assert values[6] <= min(values.values()) + 2.0, row
