"""E1 (extension) - three-stage pipeline estimate over the suite."""

from repro.evaluation import e1_three_stage


def test_e1_three_stage(once):
    table = once(e1_three_stage.run,
                 ("towers", "e_string_search", "sed_batch", "k_bit_matrix"))
    print("\n" + table.render())
    for row in table.rows:
        name, __, two_stage, three_stage, stalls, __ = row
        # the third stage never loses, and only memory-free traces tie
        assert three_stage <= two_stage, name
        assert stalls >= 0
