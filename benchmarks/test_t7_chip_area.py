"""T7 - die-area decomposition."""

from repro.evaluation import t7_chip_area


def test_t7_chip_area(once):
    table = once(t7_chip_area.run)
    print("\n" + table.render())
    control = {row[0]: row[1] for row in table.rows}
    registers = {row[0]: row[2] for row in table.rows}
    # Paper shape: hardwired RISC I control ~6%, microcoded ~35-65%.
    assert control["RISC I"] < 10
    for name in ("MC68000", "Z8002", "iAPX-432/43201"):
        assert control[name] > 30
    # The area freed goes into the register file.
    assert registers["RISC I"] > 15
