"""T1 - weighted HLL operation frequency over the full benchmark corpus."""

from repro.evaluation import t1_hll_frequency


def test_t1_hll_frequency(once):
    table = once(t1_hll_frequency.run)
    print("\n" + table.render())
    by_op = dict(zip(table.column("operation"), table.column("memory-ref %")))
    occurrence = dict(zip(table.column("operation"), table.column("occurrence %")))
    # The paper's punchline: CALL is not the most frequent operation but
    # dominates once weighted by memory references.
    assert by_op["CALL"] == max(by_op.values())
    assert occurrence["CALL"] < max(occurrence.values())
