"""F3 - delayed-jump illustration and measured slot-fill rate."""

from repro.evaluation import f3_delayed_branch


def test_f3_delayed_branch(once):
    text = once(f3_delayed_branch.run)
    print("\n" + text)
    table = f3_delayed_branch.fill_rate_table()
    total = [row for row in table.rows if row[0] == "TOTAL"][0]
    slots, filled = total[1], total[2]
    # The paper's compilers filled a substantial fraction of delay slots.
    assert slots > 0
    assert 0.2 <= filled / slots <= 0.9
