"""F4 - spill traffic vs window-file size."""

from repro.evaluation import f4_window_sweep


def test_f4_window_sweep(once):
    table = once(f4_window_sweep.run)
    print("\n" + table.render())
    for row in table.rows:
        values = [float(cell) for cell in row[1:]]
        # monotone non-increasing in the window count
        assert all(a >= b for a, b in zip(values, values[1:])), row
    # The knee: for non-pathological traces, 8 windows removes the vast
    # majority of the 2-window traffic.
    ordinary = [row for row in table.rows
                if row[0] not in ("ackermann",) and not row[0].startswith("synthetic(loc=0.5")]
    for row in ordinary:
        two, eight = float(row[1]), float(row[5])
        assert eight < 0.2 * two, row
