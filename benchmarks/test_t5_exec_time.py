"""T5 - simulated execution time over the full suite."""

from repro.evaluation import t5_exec_time
from repro.evaluation.common import run_benchmark_matrix, RISC_NAME


def test_t5_exec_time(once):
    table = once(t5_exec_time.run)
    print("\n" + table.render())
    records = run_benchmark_matrix(None)
    benchmarks = sorted({bench for bench, __ in records})
    machines = sorted({machine for __, machine in records})

    def mean_slowdown(machine):
        factors = [
            records[(bench, machine)].time_ms / records[(bench, RISC_NAME)].time_ms
            for bench in benchmarks
        ]
        return sum(factors) / len(factors)

    # Paper shape: RISC I is faster on average than every baseline, with
    # the microprocessors (68000/Z8002) trailing by roughly 2-4x.
    for machine in machines:
        if machine == RISC_NAME:
            continue
        assert mean_slowdown(machine) > 1.0, machine
    assert mean_slowdown("MC68000") > 1.8
    assert mean_slowdown("Z8002") > 2.2
    # The call-intensive programs show the windows' largest wins.
    towers = records[("towers", "MC68000")].time_ms / records[("towers", RISC_NAME)].time_ms
    assert towers > 3.0
