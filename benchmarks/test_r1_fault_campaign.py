"""R1 - fault-injection campaign rates (robustness)."""

from repro.evaluation import r1_fault_campaign
from repro.faults import Outcome


def test_r1_fault_campaign(once):
    report = once(r1_fault_campaign.run_report, injections=60)
    table = report.rate_table()
    print("\n" + table.render())
    counts = report.outcome_counts()
    # The acceptance property: no injection may escape as a host exception.
    assert counts[Outcome.CRASH] == 0
    assert sum(counts.values()) == 60
    # Most single faults land in dead state: masked is the majority
    # outcome, as in every hardware fault-injection study.
    assert counts[Outcome.MASKED] > 30
    # The table carries one row per exercised fault site plus "all".
    assert table.rows[-1][0] == "all"
    crash_column = [row[6] for row in table.rows]
    assert all(int(cell) == 0 for cell in crash_column)
