"""A2 - delay-slot filling vs NOP-filled slots."""

from repro.evaluation import ablations
from repro.evaluation.common import FAST_SUBSET


def test_a2_delay_slot_ablation(once):
    table = once(ablations.a2_delay_slots, FAST_SUBSET)
    print("\n" + table.render())
    for row in table.rows:
        name, cycles_filled, cycles_nops = row[0], row[1], row[2]
        assert cycles_filled < cycles_nops, name
        saving = (cycles_nops - cycles_filled) / cycles_nops
        assert saving < 0.25, f"{name}: implausibly large saving"
