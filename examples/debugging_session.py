"""A scripted debugging session on the RISC I simulator.

Shows the debugger facilities a bring-up engineer would use:
breakpoints, watchpoints, single-stepping, backtraces, register dumps,
and the per-function profiler.

Run with::

    python examples/debugging_session.py
"""

from repro.cc import compile_for_risc
from repro.cpu.debugger import Debugger
from repro.cpu.profiler import Profiler, function_symbols

SOURCE = """
int scratch;

int helper(int x) {
    scratch = x * 3;
    return scratch + 1;
}

int middle(int n) {
    return helper(n) + helper(n + 1);
}

int main() {
    int total = 0;
    int i;
    for (i = 0; i < 4; i = i + 1) {
        total = total + middle(i);
    }
    return total;
}
"""


def main() -> None:
    compiled = compile_for_risc(SOURCE)
    machine = compiled.make_machine()
    machine.reset(compiled.program.entry)
    debugger = Debugger(machine, symbols=dict(compiled.program.symbols))

    print("== break at _helper, then inspect ==")
    debugger.add_breakpoint("_helper")
    event = debugger.cont()
    print(f"stopped: {event.reason.value} at {debugger.describe_address(event.pc)}")
    print("\nbacktrace:")
    for frame in debugger.backtrace():
        print("   ", frame)
    print("\ndisassembly around PC:")
    for line in debugger.disassemble_around(context=2):
        print("   ", line)
    regs = debugger.registers()
    print(f"\nincoming argument r26 = {regs['r26']}, window {regs['cwp']}")

    print("\n== watchpoint on the global 'scratch' ==")
    scratch_addr = 16  # first global in the data section
    debugger.add_watchpoint(scratch_addr)
    event = debugger.cont()
    print(f"stopped: {event.reason.value} - {event.detail}")

    print("\n== finish the frame, then run to completion ==")
    event = debugger.finish()
    print(f"stopped: {event.reason.value} at {debugger.describe_address(event.pc)}")
    debugger.breakpoints.clear()
    debugger.watchpoints.clear()
    event = debugger.cont()
    print(f"stopped: {event.reason.value}; main returned {machine.result}")

    print("\n== last instructions executed (trace ring) ==")
    for line in debugger.trace_listing()[-5:]:
        print("   ", line)

    print("\n== profile of a fresh run ==")
    machine2 = compiled.make_machine()
    profiler = Profiler(machine2, function_symbols(compiled.program.symbols))
    profiler.run(compiled.program.entry)
    print(profiler.report())


if __name__ == "__main__":
    main()
