"""Tour of delayed jumps: pipeline timelines and the compiler's slot filler.

Run with::

    python examples/delayed_branch_tour.py
"""

from repro.cc import compile_for_risc
from repro.cpu.pipeline import TraceEntry, schedule
from repro.evaluation.f3_delayed_branch import illustration

SOURCE = """
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 100; i = i + 1) {
        s = s + i;
        if (s > 1000) s = s - 1000;
    }
    return s;
}
"""


def main() -> None:
    print(illustration())

    print("\n--- the same effect, measured on compiled code ---\n")
    optimised = compile_for_risc(SOURCE, optimize_delay_slots=True)
    plain = compile_for_risc(SOURCE, optimize_delay_slots=False)
    value_o, machine_o = optimised.run()
    value_p, machine_p = plain.run()
    assert value_o == value_p
    filled = optimised.codegen.delay_slots_filled
    slots = optimised.codegen.delay_slots
    print(f"delay slots in generated code : {slots}")
    print(f"slots filled with useful work : {filled} ({100 * filled / slots:.0f}%)")
    print(f"cycles with slot filling      : {machine_o.stats.cycles}")
    print(f"cycles with NOP slots         : {machine_p.stats.cycles}")
    saving = machine_p.stats.cycles - machine_o.stats.cycles
    print(f"cycles saved                  : {saving} "
          f"({100 * saving / machine_p.stats.cycles:.1f}%)")

    print("\n--- a load stalling the fetch stage ---\n")
    trace = [
        TraceEntry("add"),
        TraceEntry("ldl", is_memory=True),
        TraceEntry("sub"),
    ]
    print(schedule(trace).render())
    print("\nLoads occupy the memory port for a second cycle, so the")
    print("next fetch slips: the paper's reason loads cost two cycles.")


if __name__ == "__main__":
    main()
