"""Separate assembly and linking: build a program from three modules.

Demonstrates the relocatable-object toolchain: a math library, a data
module, and a main module assembled independently, then linked into one
runnable image with cross-module calls, data references, and an
address-table relocation.

Run with::

    python examples/separate_compilation.py
"""

from repro import RiscMachine
from repro.asm.linker import assemble_module, link

MATH_MODULE = """
; math.s - leaf routines (windowed convention: args r26.., result r26)
square:                     ; shift-and-add n*n
    mov   r16, r26          ; multiplicand
    mov   r17, r26          ; multiplier
    li    r18, 0
square_loop:
    cmp   r17, #0
    beq   square_done
    nop
    and   r19, r17, #1
    cmp   r19, #0
    beq   square_skip
    nop
    add   r18, r18, r16
square_skip:
    sll   r16, r16, #1
    srl   r17, r17, #1
    b     square_loop
    nop
square_done:
    mov   r26, r18
    ret
    nop

cube_via_table:             ; reads a coefficient from another module
    ldl   r16, r0, coefficient
    mov   r26, r16
    ret
    nop
"""

DATA_MODULE = """
; data.s - constants shared across modules
coefficient:
    .word 7
table:
    .word square            ; function address resolved at link time
    .word cube_via_table
"""

MAIN_MODULE = """
; main.s
main:
    li    r10, 9
    callr r31, square       ; external call
    nop
    mov   r16, r10          ; 81
    callr r31, cube_via_table
    nop
    add   r26, r16, r10     ; 81 + 7
    ret
    nop
"""


def main() -> None:
    modules = [
        assemble_module(MAIN_MODULE, name="main"),
        assemble_module(MATH_MODULE, name="math"),
        assemble_module(DATA_MODULE, name="data"),
    ]
    for module in modules:
        print(f"module {module.name:>5}: {module.size:>3} bytes, "
              f"exports {sorted(module.symbols)}, "
              f"needs {sorted(module.undefined_symbols()) or '-'}")

    program = link(modules, base=0)
    print(f"\nlinked image: {program.size} bytes, entry {program.entry:#x}")
    print("symbol map:")
    for name, address in sorted(program.symbols.items(), key=lambda kv: kv[1]):
        print(f"    {address:#06x}  {name}")

    machine = RiscMachine()
    program.load_into(machine.memory)
    machine.run(program.entry)
    print(f"\nresult: {machine.result} (expected 88 = 9*9 + 7)")

    table_addr = program.symbols["table"]
    entry0 = machine.memory.load_word(table_addr, count=False)
    print(f"table[0] = {entry0:#x} == address of 'square' "
          f"({program.symbols['square']:#x})")


if __name__ == "__main__":
    main()
