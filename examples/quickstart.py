"""Quickstart: assemble and run a hand-written RISC I program.

Run with::

    python examples/quickstart.py
"""

from repro import RiscMachine, assemble, disassemble_program

SOURCE = """
; Sum the integers 1..10 and return the total.
; Convention: a procedure's result goes in r26 (the caller sees it as
; r10 through the register-window overlap); `ret` is `ret r31, 8`.

main:
    li    r16, 0          ; sum
    li    r17, 1          ; i
loop:
    add   r16, r16, r17
    add   r17, r17, #1
    cmp   r17, #11
    bne   loop
    nop                   ; delay slot of the branch
    mov   r26, r16        ; return value
    ret
    nop                   ; delay slot of the return
"""


def main() -> None:
    program = assemble(SOURCE)
    print("Assembled image:")
    for line in disassemble_program(program.to_words()):
        print("   ", line)

    machine = RiscMachine()
    program.load_into(machine.memory)
    stats = machine.run(program.entry)

    print(f"\nResult: {machine.result} (expected 55)")
    print(f"Instructions executed: {stats.instructions}")
    print(f"Cycles: {stats.cycles}  (= {stats.time_ns() / 1000:.1f} us at 400 ns/cycle)")
    print(f"Taken jumps: {stats.taken_jumps}, delay slots executed: {stats.delay_slots}")
    print(f"By category: {dict(stats.by_category)}")


if __name__ == "__main__":
    main()
