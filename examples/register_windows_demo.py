"""Register windows in action: parameter passing, overflow, and sizing.

Demonstrates the paper's central mechanism on a recursive factorial:

1. arguments flow caller-r10 -> callee-r26 with *zero* memory traffic;
2. recursion deeper than the window file triggers overflow traps that
   spill 16-register units to a save stack;
3. sweeping the window count shows the knee the paper used to pick 8.

Run with::

    python examples/register_windows_demo.py
"""

from repro import RiscMachine, assemble
from repro.windows import sweep_window_counts

FACTORIAL = """
main:
    li    r10, {n}        ; argument: caller's r10 = callee's r26
    callr r31, fact
    nop
    mov   r26, r10        ; pass the result up to our own caller
    ret
    nop

fact:                     ; fact(n): n in r26, result in r26
    cmp   r26, #2
    bge   recurse
    nop
    mov   r26, #1
    ret
    nop
recurse:
    sub   r10, r26, #1    ; argument for the recursive call
    callr r31, fact
    nop
    ; multiply r26 (=n) by r10 (=fact(n-1)) with shift-and-add
    mov   r16, r10        ; multiplicand
    mov   r17, r26        ; multiplier (n, small)
    li    r18, 0
mul_loop:
    cmp   r17, #0
    beq   mul_done
    nop
    and   r19, r17, #1
    cmp   r19, #0
    beq   mul_skip
    nop
    add   r18, r18, r16
mul_skip:
    sll   r16, r16, #1
    srl   r17, r17, #1
    b     mul_loop
    nop
mul_done:
    mov   r26, r18
    ret
    nop
"""


def run_factorial(n: int, num_windows: int) -> RiscMachine:
    program = assemble(FACTORIAL.format(n=n))
    machine = RiscMachine(num_windows=num_windows)
    program.load_into(machine.memory)
    machine.run(program.entry)
    return machine


def main() -> None:
    print("factorial(10) at different window-file sizes")
    print(f"{'windows':>8} {'result':>10} {'overflows':>10} {'data refs':>10} {'cycles':>8}")
    reference = None
    for windows in (2, 4, 8, 16):
        machine = run_factorial(10, windows)
        assert reference is None or machine.result == reference
        reference = machine.result
        print(f"{windows:>8} {machine.result:>10} "
              f"{machine.stats.window_overflows:>10} "
              f"{machine.memory.stats.data_refs:>10} {machine.stats.cycles:>8}")

    print("\nWith 8 windows a depth-10 recursion traps only a few times;")
    print("with 2 windows every nested call spills 16 registers.")

    machine = run_factorial(10, 8)
    trace = machine.call_trace
    print(f"\ncall-depth trace length: {len(trace)} events "
          f"(max depth {machine.stats.max_call_depth})")
    print("window-count sweep over that trace (spilled words per call):")
    for count, result in sweep_window_counts(trace).items():
        per_call = result.spill_words / max(result.calls, 1)
        bar = "#" * round(per_call * 2)
        print(f"  N={count:>2}  {per_call:6.2f}  {bar}")


if __name__ == "__main__":
    main()
