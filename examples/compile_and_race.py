"""Compile one Mini-C program for all five machines and race them.

The end-to-end version of the paper's evaluation on a single program:
code size, executed instructions, simulated time, and memory traffic on
RISC I vs the VAX/PDP-11/68000/Z8002 models.

Run with::

    python examples/compile_and_race.py
"""

from repro.baselines import ALL_TRAITS, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.cpu.machine import CYCLE_TIME_NS

SOURCE = """
/* Sort 64 pseudo-random numbers with recursive quicksort, then
   binary-search a few of them: calls, loops, and memory traffic. */

int data[64];

int qsort_range(int lo, int hi) {
    int i; int j; int pivot; int tmp;
    if (lo >= hi) return 0;
    pivot = data[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {
        while (data[i] < pivot) i = i + 1;
        while (data[j] > pivot) j = j - 1;
        if (i <= j) {
            tmp = data[i]; data[i] = data[j]; data[j] = tmp;
            i = i + 1; j = j - 1;
        }
    }
    qsort_range(lo, j);
    qsort_range(i, hi);
    return 0;
}

int bsearch(int key) {
    int lo = 0; int hi = 63;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (data[mid] == key) return mid;
        if (data[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

int main(void) {
    int i;
    int seed = 41;
    int found = 0;
    for (i = 0; i < 64; i = i + 1) {
        seed = ((seed << 5) + seed + 7) & 4095;
        data[i] = seed;
    }
    qsort_range(0, 63);
    for (i = 0; i < 64; i = i + 8) {
        if (bsearch(data[i]) >= 0) found = found + 1;
    }
    return found * 10000 + data[32];
}
"""


def main() -> None:
    print(f"{'machine':<12} {'result':>8} {'code B':>7} {'instrs':>8} "
          f"{'cycles':>8} {'time ms':>8} {'mem refs':>9}")

    risc = compile_for_risc(SOURCE)
    value, machine = risc.run()
    risc_ms = machine.stats.cycles * CYCLE_TIME_NS / 1e6
    print(f"{'RISC I':<12} {value:>8} {risc.code_size_bytes:>7} "
          f"{machine.stats.instructions:>8} {machine.stats.cycles:>8} "
          f"{risc_ms:>8.3f} {machine.memory.stats.data_refs:>9}")

    ir = compile_to_ir(SOURCE)
    for traits in ALL_TRAITS:
        generated = compile_for_cisc(ir, traits)
        executor = CiscExecutor(generated.program, traits)
        result = executor.run()
        ms = executor.cycles * traits.cycle_time_ns / 1e6
        print(f"{traits.name:<12} {result:>8} {generated.static_bytes:>7} "
              f"{executor.instructions_executed:>8} {executor.cycles:>8} "
              f"{ms:>8.3f} {executor.memory.stats.data_refs:>9}"
              f"   ({ms / risc_ms:.1f}x RISC I)")

    print("\nNote the paper's trade: RISC I executes MORE instructions from")
    print("a LARGER binary, yet finishes first - one cycle per instruction")
    print("and almost no call-related memory traffic.")


if __name__ == "__main__":
    main()
