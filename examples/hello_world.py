"""Hello world, compiled from Mini-C to RISC I and executed.

Output goes through the memory-mapped console device at 0xF0000: each
byte stored there appears on the simulated terminal (the `putchar`
builtin compiles to exactly that one-byte store).

Run with::

    python examples/hello_world.py
"""

from repro.cc import compile_for_risc

SOURCE = r"""
char message[32] = "Hello from RISC I (1981)!";

int print_string(char *s) {
    int i;
    for (i = 0; s[i] != 0; i++) putchar(s[i]);
    return i;
}

int print_number(int n) {
    /* recursive decimal print: a call-per-digit, windows at work */
    if (n < 0) { putchar('-'); return print_number(-n); }
    if (n >= 10) print_number(n / 10);
    putchar('0' + n % 10);
    return n;
}

int main() {
    int chars = print_string(message);
    putchar('\n');
    print_string("chars printed: ");
    print_number(chars);
    putchar('\n');
    return chars;
}
"""


def main() -> None:
    compiled = compile_for_risc(SOURCE)
    value, machine = compiled.run()
    print("--- simulated console ---")
    print(machine.memory.console_output, end="")
    print("--- end of console ---")
    print(f"main returned {value}; "
          f"{machine.stats.instructions} instructions, "
          f"{machine.stats.cycles} cycles "
          f"({machine.stats.time_ns() / 1000:.0f} us at 400 ns)")


if __name__ == "__main__":
    main()
