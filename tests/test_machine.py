"""Integration tests for the RISC I executor: programs run end-to-end."""

import pytest

from repro import Memory, RiscMachine, assemble
from repro.cpu.machine import HALT_PC, HaltReason, TrapCause
from repro.errors import SimulationError, TrapError


def run(source: str, **kwargs) -> RiscMachine:
    program = assemble(source)
    machine = RiscMachine(**kwargs)
    program.load_into(machine.memory)
    machine.run(program.entry)
    return machine


FIB = """
main:
    li    r10, {n}
    callr r31, fib
    nop
    mov   r26, r10
    ret
    nop
fib:
    cmp   r26, #2
    bge   recurse
    nop
    ret
    nop
recurse:
    sub   r10, r26, #1
    callr r31, fib
    nop
    mov   r17, r10
    sub   r10, r26, #2
    callr r31, fib
    nop
    add   r26, r17, r10
    ret
    nop
"""


class TestStraightLine:
    def test_arithmetic(self):
        machine = run("main:\n li r16, 6\n li r17, 7\n add r26, r16, r17\n ret\n nop")
        assert machine.result == 13

    def test_large_immediates_via_li(self):
        machine = run("main:\n li r26, 0x12345678\n ret\n nop")
        assert machine.result == 0x12345678

    def test_memory_roundtrip(self):
        machine = run(
            """
            main:
                li   r16, 1234
                stl  r16, r0, 0x400
                ldl  r26, r0, 0x400
                ret
                nop
            """
        )
        assert machine.result == 1234

    def test_byte_and_half_access(self):
        machine = run(
            """
            main:
                li   r16, -1
                stb  r16, r0, 0x400
                ldbu r17, r0, 0x400
                ldbs r18, r0, 0x400
                add  r26, r17, r18
                ret
                nop
            """
        )
        assert machine.result == (255 - 1) & 0xFFFFFFFF

    def test_halts_with_returned(self):
        machine = run("main:\n ret\n nop")
        assert machine.halted is HaltReason.RETURNED


class TestBranches:
    def test_taken_branch_skips_fallthrough(self):
        machine = run(
            """
            main:
                li   r26, 1
                cmp  r26, #1
                beq  done
                nop
                li   r26, 99
            done:
                ret
                nop
            """
        )
        assert machine.result == 1

    def test_not_taken_branch_falls_through(self):
        machine = run(
            """
            main:
                li   r26, 1
                cmp  r26, #2
                beq  skip
                nop
                li   r26, 42
            skip:
                ret
                nop
            """
        )
        assert machine.result == 42

    def test_delay_slot_always_executes(self):
        """The instruction after a taken jump still runs (delayed jump)."""
        machine = run(
            """
            main:
                li   r26, 0
                b    done
                add  r26, r26, #5   ; delay slot: must execute
                add  r26, r26, #100 ; skipped
            done:
                ret
                nop
            """
        )
        assert machine.result == 5

    def test_loop_sums_1_to_10(self):
        machine = run(
            """
            main:
                li   r16, 0      ; sum
                li   r17, 1      ; i
            loop:
                add  r16, r16, r17
                add  r17, r17, #1
                cmp  r17, #11
                bne  loop
                nop
                mov  r26, r16
                ret
                nop
            """
        )
        assert machine.result == 55

    def test_unsigned_comparison(self):
        machine = run(
            """
            main:
                li   r16, -1        ; 0xFFFFFFFF, large unsigned
                cmp  r16, #1
                bgtu big
                nop
                li   r26, 0
                ret
                nop
            big:
                li   r26, 1
                ret
                nop
            """
        )
        assert machine.result == 1

    def test_indexed_jmp(self):
        machine = run(
            """
            main:
                li   r16, target
                jmp  alw, r16, 0
                nop
                li   r26, 0
                ret
                nop
            target:
                li   r26, 7
                ret
                nop
            """
        )
        assert machine.result == 7


class TestProcedures:
    def test_fib_shallow(self):
        machine = run(FIB.format(n=7))
        assert machine.result == 13
        assert machine.stats.window_overflows >= 1

    def test_fib_deep_matches_shallow_semantics(self):
        machine = run(FIB.format(n=12))
        assert machine.result == 144

    def test_no_traps_below_window_capacity(self):
        machine = run(FIB.format(n=5))
        assert machine.stats.window_overflows == 0
        assert machine.stats.window_underflows == 0

    def test_overflow_underflow_balance(self):
        machine = run(FIB.format(n=12))
        assert machine.stats.window_overflows == machine.stats.window_underflows

    def test_call_stats(self):
        machine = run(FIB.format(n=7))
        assert machine.stats.calls == 41  # fib invocations
        assert machine.stats.returns == 42  # fib returns + main's own return

    def test_deep_recursion_various_window_counts(self):
        """Window count must not change results, only trap counts."""
        results = {}
        for windows in (2, 4, 8, 16):
            program = assemble(FIB.format(n=10))
            machine = RiscMachine(num_windows=windows)
            program.load_into(machine.memory)
            machine.run(program.entry)
            results[windows] = (machine.result, machine.stats.window_overflows)
        values = {result for result, _ in results.values()}
        assert values == {55}
        overflow_2 = results[2][1]
        overflow_16 = results[16][1]
        assert overflow_2 > overflow_16

    def test_windows_save_memory_traffic(self):
        """More windows => fewer data memory references (the paper's claim)."""
        traffic = {}
        for windows in (2, 8):
            program = assemble(FIB.format(n=10))
            machine = RiscMachine(num_windows=windows)
            program.load_into(machine.memory)
            machine.run(program.entry)
            traffic[windows] = machine.memory.stats.data_refs
        assert traffic[8] < traffic[2]

    def test_globals_shared_across_calls(self):
        machine = run(
            """
            main:
                li    r5, 11         ; global
                callr r31, reader
                nop
                mov   r26, r10
                ret
                nop
            reader:
                mov   r26, r5        ; sees the same global
                ret
                nop
            """
        )
        assert machine.result == 11

    def test_parameters_pass_through_overlap_without_memory(self):
        machine = run(
            """
            main:
                li    r10, 30
                li    r11, 12
                callr r31, addtwo
                nop
                mov   r26, r10
                ret
                nop
            addtwo:
                add   r26, r26, r27
                ret
                nop
            """
        )
        assert machine.result == 42
        # parameter passing cost zero data memory references
        assert machine.memory.stats.data_refs == 0


class TestPswInstructions:
    def test_getpsw_reflects_flags(self):
        machine = run(
            """
            main:
                cmp    r0, #0       ; sets Z
                getpsw r26
                ret
                nop
            """
        )
        assert machine.result & 1  # Z bit

    def test_gtlpc_returns_previous_pc(self):
        machine = run(
            """
            main:
                nop
                gtlpc r26
                ret
                nop
            """
        )
        assert machine.result == 0  # PC of the nop at main

    def test_swp_tracks_oldest_resident_window(self):
        machine = run(
            """
            main:
                callr r31, leaf
                nop
                mov   r26, r10
                ret
                nop
            leaf:
                getpsw r26
                ret
                nop
            """
        )
        psw = machine.result
        cwp = (psw >> 5) & 0x7
        swp = (psw >> 8) & 0x7
        # leaf runs one window below main; main's window is the oldest
        assert swp == (cwp + 1) % 8

    def test_putpsw_sets_flags(self):
        machine = run(
            """
            main:
                li     r16, 1      ; Z bit
                putpsw r16, #0
                beq    was_zero
                nop
                li     r26, 0
                ret
                nop
            was_zero:
                li     r26, 1
                ret
                nop
            """
        )
        assert machine.result == 1


class TestMachineGuards:
    def test_step_after_halt_rejected(self):
        machine = run("main:\n ret\n nop")
        with pytest.raises(SimulationError):
            machine.step()

    def test_unbalanced_ret_traps(self):
        program = assemble("main:\n ret\n nop\n ret\n nop")
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.reset(program.entry)
        machine.step()  # ret
        machine.step()  # delay slot; pc now HALT_PC
        assert machine.pc == HALT_PC

    def test_step_limit(self):
        program = assemble("main:\nloop: b loop\n nop")
        machine = RiscMachine()
        program.load_into(machine.memory)
        stats = machine.run(program.entry, max_steps=100)
        assert machine.halted is HaltReason.STEP_LIMIT
        assert stats.instructions == 100

    def test_explicit_halt_address(self):
        program = assemble("main:\n b stop\n nop\nstop:\n nop")
        machine = RiscMachine()
        machine.halt_address = program.symbols["stop"]
        program.load_into(machine.memory)
        machine.run(program.entry)
        assert machine.halted is HaltReason.EXPLICIT


class TestWindowStackGuard:
    def test_exhausted_save_stack_traps(self):
        source = """
        main:
            li    r10, 40
            callr r31, deep
            nop
            mov   r26, r10
            ret
            nop
        deep:
            cmp   r26, #0
            ble   deep_done
            nop
            sub   r10, r26, #1
            callr r31, deep
            nop
        deep_done:
            mov   r26, #1
            ret
            nop
        """
        program = assemble(source)
        machine = RiscMachine()
        # leave room for only two spilled windows
        machine.window_stack_limit = machine.memory.size - 2 * 64
        program.load_into(machine.memory)
        machine.reset(program.entry)
        while machine.halted is None:
            machine.step()
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap is not None
        assert machine.last_trap.cause is TrapCause.WINDOW_OVERFLOW_STACK

    def test_exhausted_save_stack_strict_mode_raises(self):
        source = """
        main:
            li    r10, 40
            callr r31, deep
            nop
            mov   r26, r10
            ret
            nop
        deep:
            cmp   r26, #0
            ble   deep_done
            nop
            sub   r10, r26, #1
            callr r31, deep
            nop
        deep_done:
            mov   r26, #1
            ret
            nop
        """
        program = assemble(source)
        machine = RiscMachine(strict_traps=True)
        machine.window_stack_limit = machine.memory.size - 2 * 64
        program.load_into(machine.memory)
        machine.reset(program.entry)
        with pytest.raises(TrapError) as excinfo:
            while machine.halted is None:
                machine.step()
        assert excinfo.value.record.cause is TrapCause.WINDOW_OVERFLOW_STACK

    def test_default_limit_allows_deep_recursion(self):
        machine = run(FIB.format(n=14))
        assert machine.result == 377


class TestCycleAccounting:
    def test_alu_is_one_cycle_memory_is_two(self):
        machine = run(
            """
            main:
                add r16, r0, #1
                ldl r17, r0, 0x400
                ret
                nop
            """
        )
        # add(1) + ldl(2) + ret(1) + nop(1)
        assert machine.stats.cycles == 5

    def test_category_counters(self):
        machine = run(FIB.format(n=7))
        by_cat = machine.stats.by_category
        assert by_cat["JUMP"] > 0
        assert by_cat["ALU"] > 0

    def test_time_ns_uses_cycle_time(self):
        machine = run("main:\n ret\n nop")
        assert machine.stats.time_ns() == machine.stats.cycles * 400
        assert machine.stats.time_ns(100) == machine.stats.cycles * 100


class TestFlatRegisterFileAblation:
    def test_calls_do_not_switch_windows(self):
        # Flat register file: the link register is shared, so software
        # must spill it around calls - the cost the windows eliminate.
        source = """
        main:
            li    r9, 0x800     ; software stack pointer
            li    r16, 5
            sub   r9, r9, #4
            stl   r31, r9, 0    ; save return link
            callr r31, helper   ; flat file: callee sees the same r16
            nop
            ldl   r31, r9, 0    ; restore return link
            add   r9, r9, #4
            mov   r26, r16
            ret   r31, 8
            nop
        helper:
            add   r16, r16, #1
            ret   r31, 8
            nop
        """
        program = assemble(source)
        machine = RiscMachine(use_windows=False)
        program.load_into(machine.memory)
        machine.run(program.entry)
        # In flat mode r26 is its own register; result convention differs,
        # so read the raw register the program wrote.
        assert machine.read_reg(26) == 6
        assert machine.stats.window_overflows == 0
