"""Unit tests for the byte-addressable memory substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.memory import Memory
from repro.errors import MemoryError_, MemoryFaultError


class TestWordAccess:
    def test_roundtrip(self):
        mem = Memory(size=1024)
        mem.store_word(16, 0xDEADBEEF)
        assert mem.load_word(16) == 0xDEADBEEF

    def test_big_endian_layout(self):
        mem = Memory(size=64)
        mem.store_word(0, 0x01020304)
        assert mem.load_byte(0) == 0x01
        assert mem.load_byte(3) == 0x04

    def test_misaligned_word_raises(self):
        mem = Memory(size=64)
        with pytest.raises(MemoryFaultError) as excinfo:
            mem.load_word(2)
        assert excinfo.value.address == 2
        assert excinfo.value.kind == "misaligned"
        with pytest.raises(MemoryFaultError):
            mem.store_word(3, 1)

    def test_out_of_range_raises(self):
        mem = Memory(size=64)
        with pytest.raises(MemoryFaultError) as excinfo:
            mem.load_word(64)
        assert excinfo.value.address == 64
        assert excinfo.value.kind == "out_of_range"
        with pytest.raises(MemoryFaultError):
            mem.load_byte(-1)

    def test_deprecated_alias_still_catches(self):
        # MemoryError_ is the pre-1.1 name; existing callers keep working.
        assert MemoryError_ is MemoryFaultError
        mem = Memory(size=64)
        with pytest.raises(MemoryError_):
            mem.load_word(2)

    @given(st.integers(0, 0xFFFFFFFF))
    def test_word_roundtrip_property(self, value):
        mem = Memory(size=64)
        mem.store_word(8, value)
        assert mem.load_word(8) == value


class TestSubWordAccess:
    def test_half_roundtrip(self):
        mem = Memory(size=64)
        mem.store_half(2, 0xBEEF)
        assert mem.load_half(2) == 0xBEEF

    def test_half_signed(self):
        mem = Memory(size=64)
        mem.store_half(2, 0x8000)
        assert mem.load_half(2, signed=True) == -0x8000

    def test_byte_signed(self):
        mem = Memory(size=64)
        mem.store_byte(1, 0xFF)
        assert mem.load_byte(1, signed=True) == -1
        assert mem.load_byte(1) == 0xFF

    def test_misaligned_half_raises(self):
        mem = Memory(size=64)
        with pytest.raises(MemoryFaultError):
            mem.load_half(1)

    def test_store_masks_value(self):
        mem = Memory(size=64)
        mem.store_byte(0, 0x1FF)
        assert mem.load_byte(0) == 0xFF


class TestStats:
    def test_data_counters(self):
        mem = Memory(size=64)
        mem.store_word(0, 1)
        mem.load_word(0)
        mem.load_byte(1)
        assert mem.stats.data_writes == 1
        assert mem.stats.data_reads == 2
        assert mem.stats.data_refs == 3

    def test_fetch_counted_separately(self):
        mem = Memory(size=64)
        mem.fetch_word(0)
        assert mem.stats.inst_reads == 1
        assert mem.stats.data_reads == 0
        assert mem.stats.total_refs == 1

    def test_uncounted_access(self):
        mem = Memory(size=64)
        mem.store_word(0, 5, count=False)
        assert mem.load_word(0, count=False) == 5
        assert mem.stats.total_refs == 0

    def test_reset(self):
        mem = Memory(size=64)
        mem.store_word(0, 1)
        mem.stats.reset()
        assert mem.stats.total_refs == 0


class TestBulkHelpers:
    def test_words_roundtrip(self):
        mem = Memory(size=256)
        mem.store_words(16, [1, 2, 3])
        assert mem.load_words(16, 3) == [1, 2, 3]
        assert mem.stats.total_refs == 0

    def test_load_program(self):
        mem = Memory(size=256)
        mem.load_program([0xAABBCCDD, 0x11223344], base=8)
        assert mem.load_word(8, count=False) == 0xAABBCCDD
        assert mem.load_word(12, count=False) == 0x11223344

    def test_cstring_roundtrip(self):
        mem = Memory(size=256)
        mem.write_cstring(32, "hello")
        assert mem.read_cstring(32) == "hello"

    def test_cstring_empty(self):
        mem = Memory(size=256)
        mem.write_cstring(32, "")
        assert mem.read_cstring(32) == ""


class TestCheckpoint:
    def test_full_image_restore(self):
        mem = Memory(size=1024)
        mem.store_word(0, 0xAAAA5555)
        cp = mem.checkpoint()
        mem.store_word(0, 1)
        mem.store_word(512, 2)
        mem.restore(cp)
        assert mem.load_word(0, count=False) == 0xAAAA5555
        assert mem.load_word(512, count=False) == 0

    def test_delta_restore_rolls_back_only_touched_pages(self):
        mem = Memory(size=4096)
        mem.store_word(0, 0x11111111)
        cp = mem.checkpoint(track_deltas=True)
        mem.store_word(0, 0x22222222)
        mem.store_byte(3000, 0x7F)
        mem.restore(cp)
        assert mem.load_word(0, count=False) == 0x11111111
        assert mem.load_byte(3000, count=False) == 0

    def test_restore_rewinds_stats_and_console(self):
        mem = Memory(size=1024)
        cp = mem.checkpoint()
        mem.store_word(0, 1)
        mem.load_word(0)
        mem.restore(cp)
        assert mem.stats.total_refs == 0
