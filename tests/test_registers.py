"""Tests for register naming and the overlapped-window physical mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.registers import (
    GLOBAL_REGS,
    HIGH_REGS,
    LOCAL_REGS,
    LOW_REGS,
    NUM_PHYSICAL_REGISTERS,
    NUM_WINDOWS,
    REGS_PER_WINDOW_UNIQUE,
    VISIBLE_REGISTERS,
    WINDOW_OVERLAP,
    RegisterNamespace,
    block_of,
    physical_index,
    register_name,
    register_number,
)


class TestPaperConstants:
    def test_138_physical_registers(self):
        assert NUM_PHYSICAL_REGISTERS == 138

    def test_8_windows(self):
        assert NUM_WINDOWS == 8

    def test_32_visible(self):
        assert VISIBLE_REGISTERS == 32

    def test_overlap_of_6(self):
        assert WINDOW_OVERLAP == 6

    def test_16_unique_per_window(self):
        assert REGS_PER_WINDOW_UNIQUE == 16

    def test_block_ranges(self):
        assert list(GLOBAL_REGS) == list(range(10))
        assert list(LOW_REGS) == list(range(10, 16))
        assert list(LOCAL_REGS) == list(range(16, 26))
        assert list(HIGH_REGS) == list(range(26, 32))


class TestPhysicalMapping:
    def test_globals_shared_by_all_windows(self):
        for window in range(NUM_WINDOWS):
            for reg in GLOBAL_REGS:
                assert physical_index(window, reg) == reg

    @given(window=st.integers(0, NUM_WINDOWS - 1))
    def test_caller_low_is_callee_high(self, window):
        """The paper's key mechanism: args pass through the overlap."""
        caller = (window + 1) % NUM_WINDOWS
        for k in range(WINDOW_OVERLAP):
            assert physical_index(caller, 10 + k) == physical_index(window, 26 + k)

    def test_local_blocks_are_disjoint_across_windows(self):
        seen = set()
        for window in range(NUM_WINDOWS):
            for reg in range(10, 26):
                index = physical_index(window, reg)
                assert index not in seen
                seen.add(index)
        assert len(seen) == NUM_WINDOWS * REGS_PER_WINDOW_UNIQUE

    def test_all_indices_in_range(self):
        for window in range(NUM_WINDOWS):
            for reg in range(VISIBLE_REGISTERS):
                assert 0 <= physical_index(window, reg) < NUM_PHYSICAL_REGISTERS

    def test_window_wraps_modulo(self):
        assert physical_index(NUM_WINDOWS, 16) == physical_index(0, 16)
        assert physical_index(-1, 16) == physical_index(NUM_WINDOWS - 1, 16)

    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            physical_index(0, 32)

    @given(
        window=st.integers(0, 15),
        reg=st.integers(10, 25),
        num_windows=st.integers(2, 16),
    )
    def test_unique_block_formula(self, window, reg, num_windows):
        index = physical_index(window, reg, num_windows)
        expected = 10 + 16 * (window % num_windows) + (reg - 10)
        assert index == expected


class TestNames:
    def test_roundtrip(self):
        for reg in range(VISIBLE_REGISTERS):
            assert register_number(register_name(reg)) == reg

    def test_aliases(self):
        assert register_number("sp") == 9
        assert register_number("fp") == 8
        assert register_number("ra") == 31
        assert register_number("zero") == 0

    def test_case_insensitive(self):
        assert register_number("R7") == 7

    def test_non_register_rejected(self):
        with pytest.raises(ValueError):
            register_number("r32")
        with pytest.raises(ValueError):
            register_number("foo")
        assert RegisterNamespace.lookup("banana") is None

    def test_name_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(32)


class TestBlockOf:
    def test_blocks(self):
        assert block_of(0) == "GLOBAL"
        assert block_of(12) == "LOW"
        assert block_of(20) == "LOCAL"
        assert block_of(31) == "HIGH"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            block_of(32)
