"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import (
    MASK32,
    add32,
    bit_field,
    fits_signed,
    fits_unsigned,
    rotate_left,
    set_bit_field,
    sign_extend,
    sub32,
    to_signed,
    to_unsigned,
)

u32 = st.integers(min_value=0, max_value=MASK32)
s32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


class TestConversions:
    def test_to_unsigned_wraps_negative(self):
        assert to_unsigned(-1) == MASK32

    def test_to_signed_high_bit(self):
        assert to_signed(0x80000000) == -(1 << 31)

    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_small_widths(self):
        assert to_signed(0x1FFF, 13) == -1
        assert to_signed(0x0FFF, 13) == 0x0FFF

    @given(s32)
    def test_roundtrip_signed(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(u32)
    def test_roundtrip_unsigned(self, value):
        assert to_unsigned(to_signed(value)) == value


class TestSignExtend:
    def test_extends_negative_13(self):
        assert sign_extend(0x1000, 13) == to_unsigned(-4096)

    def test_keeps_positive(self):
        assert sign_extend(0x0FFF, 13) == 0x0FFF

    @given(st.integers(min_value=-(1 << 12), max_value=(1 << 12) - 1))
    def test_sign_extend_13_preserves_value(self, value):
        assert to_signed(sign_extend(to_unsigned(value, 13), 13)) == value


class TestBitFields:
    def test_extract(self):
        assert bit_field(0b1011_0000, 4, 4) == 0b1011

    def test_insert(self):
        assert set_bit_field(0, 4, 4, 0b1011) == 0b1011_0000

    @given(u32, st.integers(0, 27), st.integers(1, 5))
    def test_roundtrip_field(self, word, lo, width):
        value = bit_field(word, lo, width)
        assert bit_field(set_bit_field(word, lo, width, value), lo, width) == value


class TestRotate:
    def test_simple(self):
        assert rotate_left(0x80000001, 1) == 0x00000003

    @given(u32, st.integers(0, 64))
    def test_rotate_full_circle(self, value, amount):
        assert rotate_left(rotate_left(value, amount), 32 - (amount % 32)) == value


class TestFits:
    def test_signed_13(self):
        assert fits_signed(4095, 13)
        assert fits_signed(-4096, 13)
        assert not fits_signed(4096, 13)
        assert not fits_signed(-4097, 13)

    def test_unsigned(self):
        assert fits_unsigned(8191, 13)
        assert not fits_unsigned(8192, 13)
        assert not fits_unsigned(-1, 13)


class TestAdd32:
    def test_plain(self):
        assert add32(2, 3) == (5, False, False)

    def test_carry_out(self):
        result, carry, overflow = add32(MASK32, 1)
        assert result == 0
        assert carry
        assert not overflow

    def test_signed_overflow(self):
        result, carry, overflow = add32(0x7FFFFFFF, 1)
        assert result == 0x80000000
        assert overflow
        assert not carry

    @given(u32, u32, st.booleans())
    def test_matches_python_arithmetic(self, a, b, cin):
        result, carry, overflow = add32(a, b, int(cin))
        total = a + b + int(cin)
        assert result == total & MASK32
        assert carry == (total > MASK32)
        expected_overflow = not (
            -(1 << 31) <= to_signed(a) + to_signed(b) + int(cin) <= (1 << 31) - 1
        )
        assert overflow == expected_overflow


class TestSub32:
    def test_plain(self):
        assert sub32(5, 3) == (2, False, False)

    def test_borrow(self):
        result, borrow, overflow = sub32(3, 5)
        assert result == to_unsigned(-2)
        assert borrow
        assert not overflow

    def test_signed_overflow(self):
        _, _, overflow = sub32(0x80000000, 1)
        assert overflow

    @given(u32, u32, st.booleans())
    def test_matches_python_arithmetic(self, a, b, bin_):
        result, borrow, overflow = sub32(a, b, int(bin_))
        total = a - b - int(bin_)
        assert result == total & MASK32
        assert borrow == (total < 0)
        expected_overflow = not (
            -(1 << 31) <= to_signed(a) - to_signed(b) - int(bin_) <= (1 << 31) - 1
        )
        assert overflow == expected_overflow
