"""Property-based tests of machine-level invariants.

These target the trickiest state in the simulator - the windowed
register file under arbitrary call/return patterns - plus determinism
and accounting invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RiscMachine, assemble

# A harness program whose call pattern is driven by a data table:
# main walks a list of depths, calling `descend` with each, which
# recurses that deep, salts locals at each level, and checks them on
# the way back - any window-spill bug corrupts the checksum.
HARNESS = """
depths:
    .word {depths}
ndepths = {count}

main:
    li    r16, 0           ; index
    li    r17, 0           ; checksum accumulator
main_loop:
    cmp   r16, #ndepths
    bge   main_done
    nop
    sll   r18, r16, #2
    add   r18, r18, #depths
    ldl   r10, r18, 0      ; argument: depth
    callr r31, descend
    nop
    add   r17, r17, r10    ; accumulate returned signature
    add   r16, r16, #1
    b     main_loop
    nop
main_done:
    mov   r26, r17
    ret
    nop

descend:                   ; arg r26 = remaining depth
    mov   r16, r26         ; salt a local with the depth
    xor   r17, r26, #0x55  ; and a second one
    cmp   r26, #0
    bgt   go_deeper
    nop
    mov   r26, #1
    ret
    nop
go_deeper:
    sub   r10, r26, #1
    callr r31, descend
    nop
    ; locals must have survived the callee's window traffic
    cmp   r16, r26
    bne   corrupt
    nop
    xor   r18, r26, #0x55
    cmp   r17, r18
    bne   corrupt
    nop
    add   r26, r10, #1     ; signature: depth+1 going up
    ret
    nop
corrupt:
    li    r26, -999999
    ret
    nop
"""


def run_harness(depths, num_windows=8):
    source = HARNESS.format(
        depths=", ".join(str(d) for d in depths), count=len(depths)
    )
    program = assemble(source)
    machine = RiscMachine(num_windows=num_windows)
    program.load_into(machine.memory)
    machine.run(program.entry)
    return machine


class TestWindowIntegrity:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 24), min_size=1, max_size=6),
           st.sampled_from([2, 3, 4, 8, 16]))
    def test_locals_survive_arbitrary_call_patterns(self, depths, windows):
        machine = run_harness(depths, windows)
        expected = sum(d + 1 for d in depths)
        assert machine.result == expected, (depths, windows)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=5))
    def test_result_independent_of_window_count(self, depths):
        results = {run_harness(depths, w).result for w in (2, 8, 16)}
        assert len(results) == 1

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=5))
    def test_overflows_balance_underflows(self, depths):
        machine = run_harness(depths)
        assert machine.stats.window_overflows == machine.stats.window_underflows

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 16), min_size=1, max_size=4))
    def test_save_stack_fully_unwinds(self, depths):
        machine = run_harness(depths)
        assert machine.window_save_pointer == machine.memory.size


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=4))
    def test_repeat_runs_identical(self, depths):
        first = run_harness(depths)
        second = run_harness(depths)
        assert first.result == second.result
        assert first.stats.cycles == second.stats.cycles
        assert first.stats.instructions == second.stats.instructions


class TestAccounting:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=4))
    def test_cycles_at_least_instructions(self, depths):
        machine = run_harness(depths)
        assert machine.stats.cycles >= machine.stats.instructions

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=4))
    def test_category_counters_sum_to_total(self, depths):
        machine = run_harness(depths)
        assert sum(machine.stats.by_category.values()) == machine.stats.instructions
        assert sum(machine.stats.by_opcode.values()) == machine.stats.instructions

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=4))
    def test_call_trace_balances(self, depths):
        machine = run_harness(depths)
        assert sum(machine.call_trace) == 0
