"""Architecture validation suite: every instruction through the full stack.

Each case assembles a small self-contained program, runs it on the
machine, and checks results against a Python oracle - the bring-up
style tests a hardware team would run, exercising assembler + encoder +
decoder + executor together (the unit-level ALU tests bypass the
pipeline; these do not).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RiscMachine, assemble
from repro.common.bitops import to_signed, to_unsigned

s32 = st.integers(-(2**31), 2**31 - 1)
small = st.integers(0, 31)


def run_fragment(body: str, **kwargs) -> RiscMachine:
    source = f"main:\n{body}\n    ret\n    nop\n"
    program = assemble(source)
    machine = RiscMachine(**kwargs)
    program.load_into(machine.memory)
    machine.run(program.entry)
    return machine


def binary_case(mnemonic: str, a: int, b: int) -> int:
    machine = run_fragment(f"""
    li   r16, {a}
    li   r17, {b}
    {mnemonic} r26, r16, r17
    """)
    return to_signed(machine.result)


class TestAluThroughPipeline:
    @settings(max_examples=25, deadline=None)
    @given(s32, s32)
    def test_add(self, a, b):
        assert binary_case("add", a, b) == to_signed(to_unsigned(a + b))

    @settings(max_examples=25, deadline=None)
    @given(s32, s32)
    def test_sub(self, a, b):
        assert binary_case("sub", a, b) == to_signed(to_unsigned(a - b))

    @settings(max_examples=15, deadline=None)
    @given(s32, s32)
    def test_subr(self, a, b):
        assert binary_case("subr", a, b) == to_signed(to_unsigned(b - a))

    @settings(max_examples=15, deadline=None)
    @given(s32, s32)
    def test_logical(self, a, b):
        assert binary_case("and", a, b) == to_signed(to_unsigned(a) & to_unsigned(b))
        assert binary_case("or", a, b) == to_signed(to_unsigned(a) | to_unsigned(b))
        assert binary_case("xor", a, b) == to_signed(to_unsigned(a) ^ to_unsigned(b))

    @settings(max_examples=15, deadline=None)
    @given(s32, small)
    def test_shifts(self, a, n):
        assert binary_case("sll", a, n) == to_signed(to_unsigned(a << n))
        assert binary_case("srl", a, n) == to_signed(to_unsigned(a) >> n)
        assert binary_case("sra", a, n) == to_signed(to_unsigned(to_signed(to_unsigned(a)) >> n))

    def test_addc_subc_chain(self):
        """64-bit add via ADDC: the carry chain must work end to end."""
        machine = run_fragment("""
        li   r16, -1          ; low word a = 0xFFFFFFFF
        li   r17, 1           ; low word b
        li   r18, 2           ; high word a
        li   r19, 3           ; high word b
        adds r26, r16, r17    ; low sum, sets carry
        addc r27, r18, r19    ; high sum + carry
        """)
        assert machine.result == 0  # low word wrapped to zero
        assert machine.read_reg(11) == 6  # 2 + 3 + carry (r27 -> caller r11)


class TestMemoryThroughPipeline:
    @settings(max_examples=15, deadline=None)
    @given(s32)
    def test_word_roundtrip(self, value):
        machine = run_fragment(f"""
        li   r16, {value}
        stl  r16, r0, 0x600
        ldl  r26, r0, 0x600
        """)
        assert to_signed(machine.result) == to_signed(to_unsigned(value))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 0xFFFF))
    def test_half_roundtrip_unsigned_and_signed(self, value):
        machine = run_fragment(f"""
        li   r16, {value}
        sts  r16, r0, 0x600
        ldsu r26, r0, 0x600
        """)
        assert machine.result == value
        machine = run_fragment(f"""
        li   r16, {value}
        sts  r16, r0, 0x600
        ldss r26, r0, 0x600
        """)
        expected = value - 0x10000 if value & 0x8000 else value
        assert to_signed(machine.result) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 0xFF))
    def test_byte_roundtrip(self, value):
        machine = run_fragment(f"""
        li   r16, {value}
        stb  r16, r0, 0x601
        ldbu r26, r0, 0x601
        """)
        assert machine.result == value

    def test_register_indexed_addressing(self):
        machine = run_fragment("""
        li   r16, 0x600
        li   r17, 8
        li   r18, 777
        stl  r18, r16, r17    ; M[0x608] = 777
        ldl  r26, r0, 0x608
        """)
        assert machine.result == 777


class TestControlThroughPipeline:
    @pytest.mark.parametrize("cond,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", -1, 0, True), ("blt", 0, -1, False),
        ("bge", 3, 3, True), ("bge", 2, 3, False),
        ("bgt", 4, 3, True), ("bgt", 3, 3, False),
        ("ble", 3, 3, True), ("ble", 4, 3, False),
        ("bltu", 1, 2, True), ("bltu", -1, 1, False),  # -1 is big unsigned
        ("bgtu", -1, 1, True), ("bgtu", 1, 2, False),
        ("bmi", -5, 0, True), ("bpl", 5, 0, True),
    ])
    def test_conditional_branches(self, cond, a, b, taken):
        machine = run_fragment(f"""
        li   r16, {a}
        li   r17, {b}
        cmp  r16, r17
        {cond}  taken_path
        nop
        mov  r26, #0
        b    done
        nop
    taken_path:
        mov  r26, #1
    done:
    """)
        assert machine.result == int(taken)

    def test_overflow_conditions(self):
        machine = run_fragment("""
        li   r16, 0x7FFFFFFF
        adds r17, r16, #1      ; signed overflow
        bv   overflowed
        nop
        mov  r26, #0
        b    done
        nop
    overflowed:
        mov  r26, #1
    done:
    """)
        assert machine.result == 1

    def test_ldhi_gives_upper_bits(self):
        machine = run_fragment("""
        ldhi r26, 5
        """)
        assert machine.result == 5 << 13

    def test_call_via_register(self):
        machine = run_fragment("""
        li    r16, target
        call  r31, r16, 0
        nop
        mov   r26, r10
        b     out
        nop
    target:
        mov   r26, #123
        ret
        nop
    out:
    """)
        assert machine.result == 123
