"""Tests for the two-stage pipeline timing model (F3 substrate)."""

from repro.cpu.pipeline import PipelineTimeline, TraceEntry, cycle_count, schedule


def entries(*labels, **flags):
    return [TraceEntry(label) for label in labels]


class TestCycleCount:
    def test_straight_line(self):
        trace = entries("i1", "i2", "i3")
        assert cycle_count(trace) == 3

    def test_memory_ops_cost_two(self):
        trace = [TraceEntry("ld", is_memory=True), TraceEntry("i2")]
        assert cycle_count(trace) == 3

    def test_normal_jump_pays_a_bubble(self):
        trace = [TraceEntry("jump", takes_jump=True), TraceEntry("target")]
        assert cycle_count(trace, delayed_jumps=False) == 3
        assert cycle_count(trace, delayed_jumps=True) == 2

    def test_delayed_jump_with_nop_matches_normal(self):
        normal = [TraceEntry("i1"), TraceEntry("jump", takes_jump=True),
                  TraceEntry("i4")]
        delayed = [TraceEntry("i1"), TraceEntry("jump", takes_jump=True),
                   TraceEntry("nop"), TraceEntry("i4")]
        assert (cycle_count(delayed, delayed_jumps=True)
                == cycle_count(normal, delayed_jumps=False))

    def test_optimized_delayed_jump_saves_a_cycle(self):
        normal = [TraceEntry("i1"), TraceEntry("jump", takes_jump=True),
                  TraceEntry("i4")]
        optimized = [TraceEntry("jump", takes_jump=True), TraceEntry("i1"),
                     TraceEntry("i4")]
        assert (cycle_count(optimized, delayed_jumps=True)
                == cycle_count(normal, delayed_jumps=False) - 1)


class TestTimeline:
    def test_execute_row_contains_every_instruction(self):
        trace = entries("a", "b", "c")
        timeline = schedule(trace)
        assert [cell for cell in timeline.execute if cell] == ["a", "b", "c"]

    def test_fetch_leads_execute_by_one(self):
        trace = entries("a", "b")
        timeline = schedule(trace)
        assert timeline.fetch[0] == "a"
        assert timeline.execute[1] == "a"

    def test_squash_marker_on_normal_jump(self):
        trace = [TraceEntry("jump", takes_jump=True), TraceEntry("t")]
        timeline = schedule(trace, delayed_jumps=False)
        assert "(squash)" in timeline.fetch

    def test_memory_stall_marker(self):
        trace = [TraceEntry("ld", is_memory=True), TraceEntry("b")]
        timeline = schedule(trace)
        assert "(mem)" in timeline.fetch

    def test_render_produces_rows(self):
        text = schedule(entries("a", "b")).render()
        assert "fetch" in text and "execute" in text

    def test_empty_timeline(self):
        timeline = PipelineTimeline()
        assert timeline.cycles == 0
