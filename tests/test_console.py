"""Tests for the memory-mapped console device and the putchar builtin."""

import pytest

from repro import RiscMachine, assemble
from repro.cc import compile_for_risc
from repro.common.memory import CONSOLE_ADDRESS, Memory
from repro.errors import SemanticError
from repro.hll import run_program


class TestDevice:
    def test_byte_store_reaches_console(self):
        memory = Memory(size=1 << 20)
        memory.store_byte(CONSOLE_ADDRESS, ord("A"))
        assert memory.console_output == "A"

    def test_word_store_reaches_console(self):
        memory = Memory(size=1 << 20)
        memory.store_word(CONSOLE_ADDRESS, ord("B"))
        assert memory.console_output == "B"

    def test_console_reads_return_ready(self):
        memory = Memory(size=1 << 20)
        assert memory.load_byte(CONSOLE_ADDRESS) == 0
        assert memory.load_word(CONSOLE_ADDRESS) == 0

    def test_console_does_not_touch_ram(self):
        memory = Memory(size=1 << 20)
        memory.store_byte(CONSOLE_ADDRESS, 0x41)
        # neighbouring RAM stays zero; the device is not backed by RAM
        assert memory.load_byte(CONSOLE_ADDRESS + 1, count=False) == 0

    def test_counts_as_data_reference(self):
        memory = Memory(size=1 << 20)
        memory.store_byte(CONSOLE_ADDRESS, 1)
        assert memory.stats.data_writes == 1


class TestAssemblyLevel:
    def test_stb_to_console(self):
        source = f"""
        main:
            li   r16, 'H'
            li   r17, {CONSOLE_ADDRESS}
            stb  r16, r17, 0
            li   r16, 'i'
            stb  r16, r17, 0
            ret
            nop
        """
        program = assemble(source)
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.run(program.entry)
        assert machine.memory.console_output == "Hi"


class TestPutcharBuiltin:
    def test_interpreter_output(self):
        result = run_program(
            "int main() { putchar('o'); putchar('k'); return 0; }"
        )
        assert result.memory.console_output == "ok"

    def test_compiled_output_matches(self):
        source = """
        int main() {
            int i;
            for (i = 0; i < 5; i++) putchar('a' + i);
            return 0;
        }
        """
        interp = run_program(source)
        compiled = compile_for_risc(source)
        __, machine = compiled.run()
        assert machine.memory.console_output == interp.memory.console_output == "abcde"

    def test_putchar_returns_the_character(self):
        source = "int main() { return putchar(65); }"
        assert run_program(source).value == 65
        value, __ = compile_for_risc(source).run()
        assert value == 65

    def test_putchar_truncates_to_byte(self):
        source = "int main() { return putchar(256 + 65); }"
        assert run_program(source).value == 65
        value, machine = compile_for_risc(source).run()
        assert value == 65
        assert machine.memory.console_output == "A"

    def test_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            run_program("int main() { putchar(1, 2); return 0; }")

    def test_pointer_argument_rejected(self):
        with pytest.raises(SemanticError):
            run_program("char s[4]; int main() { putchar(s); return 0; }")

    def test_user_definition_shadows_builtin(self):
        source = """
        int putchar(int c) { return c * 2; }
        int main() { return putchar(10); }
        """
        assert run_program(source).value == 20
        value, machine = compile_for_risc(source).run()
        assert value == 20
        assert machine.memory.console_output == ""
