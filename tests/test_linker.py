"""Tests for the relocatable object format and the linker."""

import pytest

from repro import RiscMachine
from repro.asm.linker import assemble_module, link
from repro.asm.objfile import ObjectFile, Relocation, RelocKind, apply_relocation
from repro.errors import AssemblerError

LIB = """
double_it:
    add  r26, r26, r26
    ret
    nop
counter:
    .word 5
"""

MAIN = """
main:
    li    r10, 21
    callr r31, double_it
    nop
    ldl   r16, r0, counter
    add   r26, r10, r16
    ret
    nop
"""


def run_linked(modules, entry="main"):
    program = link(modules, base=0, entry=entry)
    machine = RiscMachine()
    program.load_into(machine.memory)
    machine.run(program.entry)
    return machine, program


class TestModuleAssembly:
    def test_exports_all_labels(self):
        module = assemble_module(LIB, name="lib")
        assert set(module.symbols) == {"double_it", "counter"}

    def test_records_undefined_symbols(self):
        module = assemble_module(MAIN, name="main")
        assert module.undefined_symbols() == {"double_it", "counter"}

    def test_relocation_kinds(self):
        module = assemble_module(MAIN, name="main")
        kinds = {reloc.kind for reloc in module.relocations}
        assert RelocKind.REL19 in kinds  # callr
        assert RelocKind.ABS13 in kinds  # ldl offset

    def test_self_contained_module_has_no_relocations(self):
        module = assemble_module(LIB, name="lib")
        assert not module.relocations

    def test_word_relocation(self):
        module = assemble_module("ref:\n .word elsewhere", name="m")
        assert module.relocations[0].kind is RelocKind.WORD32

    def test_li_relocation(self):
        module = assemble_module("f:\n li r4, elsewhere\n ret\n nop", name="m")
        assert module.relocations[0].kind is RelocKind.HI19LO13

    def test_two_externals_in_one_statement_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_module("x:\n .word a + b", name="m")

    def test_undefined_in_size_context_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_module(".space elsewhere", name="m")


class TestLink:
    def test_two_module_program_runs(self):
        machine, __ = run_linked([
            assemble_module(MAIN, name="main"),
            assemble_module(LIB, name="lib"),
        ])
        assert machine.result == 47  # 2*21 + 5

    def test_module_order_does_not_change_result(self):
        for order in ([0, 1], [1, 0]):
            modules = [assemble_module(MAIN, "main"), assemble_module(LIB, "lib")]
            machine, __ = run_linked([modules[i] for i in order])
            assert machine.result == 47

    def test_word_relocation_holds_final_address(self):
        table = assemble_module("tbl:\n .word double_it", name="tbl")
        lib = assemble_module(LIB, name="lib")
        main = assemble_module(MAIN, name="main")
        program = link([main, table, lib])
        word = int.from_bytes(
            program.image[program.symbols["tbl"] : program.symbols["tbl"] + 4], "big"
        )
        assert word == program.symbols["double_it"]

    def test_li_relocation_resolves_large_addresses(self):
        far = assemble_module(
            ".org 0x6000\nvalue:\n .word 1234", name="far"
        )
        user = assemble_module(
            "main:\n li r16, value\n ldl r26, r16, 0\n ret\n nop", name="user"
        )
        machine, __ = run_linked([user, far])
        assert machine.result == 1234

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            link([assemble_module(MAIN, name="main")])

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            link([assemble_module(LIB, "a"), assemble_module(LIB, "b")])

    def test_missing_entry_rejected(self):
        with pytest.raises(AssemblerError):
            link([assemble_module(LIB, "lib")], entry="main")

    def test_rel19_out_of_range_rejected(self):
        near = assemble_module("main:\n b target\n nop", name="near")
        fake = ObjectFile(name="fake", image=bytearray(4),
                          symbols={"target": 0})
        # place the target impossibly far by faking a huge module
        fake.image = bytearray(1 << 19)
        fake.symbols = {"pad_end": (1 << 19) - 4, "target": (1 << 19) - 4}
        with pytest.raises(AssemblerError):
            link([near, fake])


class TestApplyRelocation:
    def test_word32(self):
        image = bytearray(8)
        apply_relocation(image, Relocation(RelocKind.WORD32, 4, "s", addend=8),
                         module_base=0, target_address=0x1000)
        assert int.from_bytes(image[4:8], "big") == 0x1008

    def test_abs13_overflow_rejected(self):
        image = bytearray(4)
        with pytest.raises(AssemblerError):
            apply_relocation(image, Relocation(RelocKind.ABS13, 0, "s"),
                             module_base=0, target_address=0x10000)

    def test_hi19lo13_roundtrip(self):
        from repro.isa.decode import decode
        from repro.isa.encode import encode
        from repro.isa.formats import Instruction
        from repro.isa.opcodes import Opcode

        image = bytearray(
            encode(Instruction(Opcode.LDHI, dest=4, imm19=0)).to_bytes(4, "big")
            + encode(Instruction(Opcode.ADD, dest=4, rs1=4, s2=0, imm=True)).to_bytes(4, "big")
        )
        target = 0x12345678
        apply_relocation(image, Relocation(RelocKind.HI19LO13, 0, "s"),
                         module_base=0, target_address=target)
        high = decode(int.from_bytes(image[0:4], "big"))
        low = decode(int.from_bytes(image[4:8], "big"))
        assert ((high.imm19 << 13) + low.s2) & 0xFFFFFFFF == target
