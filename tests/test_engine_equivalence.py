"""Differential equivalence: the fast and block engines must be bit-identical.

Three layers of assurance:

* every bundled Mini-C workload, compiled and run on every engine,
  diffed with :mod:`repro.cpu.equivalence` (stats, trap log, registers,
  PSW, full memory image, console, call trace);
* hand-written trap-path programs (memory faults, illegal words,
  overflow traps, delay-slot faults, vectored handlers, window
  spill/refill) diffed the same way;
* the stateful tools - checkpoint/rollback and the debugger - exercised
  against both engines, including a rollback taken mid-delay-slot on
  the fast engine (whose pre-decoded thunk cache must survive an
  in-place state rewind).
"""

import pytest

from repro import RiscMachine, assemble
from repro.cpu.debugger import Debugger, StopReason
from repro.cpu.equivalence import (
    assert_engines_equivalent,
    diff_digests,
    run_differential,
    state_digest,
)
from repro.cpu.machine import HaltReason, TrapCause
from repro.workloads import BENCHMARKS, benchmark

from repro.cpu.engines import default_sweep_engines

ENGINES = default_sweep_engines()

WORKLOAD_NAMES = [bench.name for bench in BENCHMARKS]


def run_asm(source: str, engine: str, **kwargs) -> RiscMachine:
    program = assemble(source)
    machine = RiscMachine(engine=engine, **kwargs)
    program.load_into(machine.memory)
    machine.run(program.entry)
    return machine


def assert_asm_equivalent(source: str, **kwargs) -> RiscMachine:
    """Run *source* on every engine; return the reference machine."""
    machines = [run_asm(source, engine, **kwargs) for engine in ENGINES]
    digests = [state_digest(machine) for machine in machines]
    for engine, digest in zip(ENGINES[1:], digests[1:]):
        mismatches = diff_digests(digests[0], digest)
        assert not mismatches, f"[{engine}] " + "\n".join(mismatches)
    return machines[0]


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_bit_identical(self, name):
        result = assert_engines_equivalent(benchmark(name).source)
        assert result.instructions > 0

    def test_ablation_no_windows_bit_identical(self):
        # The flat-register-file ablation exercises different codegen in
        # the fast engine's register-index folding.
        from repro.cc import compile_for_risc

        compiled = compile_for_risc(benchmark("towers").source, use_windows=False)
        digests = []
        for engine in ENGINES:
            __, machine = compiled.run(engine=engine)
            digests.append(state_digest(machine))
        for digest in digests[1:]:
            assert not diff_digests(digests[0], digest)

    def test_few_windows_spill_heavy_bit_identical(self):
        # num_windows=2 forces constant overflow/underflow trap traffic.
        result = run_differential(benchmark("ackermann").source, num_windows=2)
        assert result.equivalent, "\n".join(result.mismatches)
        assert result.digests[0]["stats"]["window_overflows"] > 0


class TestTrapPathEquivalence:
    def test_misaligned_load_halts_identically(self):
        machine = assert_asm_equivalent(
            """
            main:
                ldl r26, r0, 0x401
                ret
                nop
            """
        )
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap.cause is TrapCause.MISALIGNED_ACCESS

    def test_out_of_range_store_halts_identically(self):
        machine = assert_asm_equivalent(
            """
            main:
                li  r16, 0x7ffffff0
                stl r16, r16, 0
                ret
                nop
            """
        )
        assert machine.halted is HaltReason.TRAPPED

    def test_illegal_instruction_word_halts_identically(self):
        machine = assert_asm_equivalent(
            """
            main:
                .word 0xffffffff
                ret
                nop
            """
        )
        assert machine.last_trap.cause is TrapCause.ILLEGAL_INSTRUCTION

    def test_arithmetic_overflow_trap_identical(self):
        source = """
        main:
            li   r16, 0x7fffffff
            add  r17, r16, r16
            ret
            nop
        """
        machines = []
        for engine in ENGINES:
            program = assemble(source)
            machine = RiscMachine(engine=engine)
            machine.trap_on_overflow = True
            program.load_into(machine.memory)
            machine.run(program.entry)
            machines.append(machine)
        digests = [state_digest(machine) for machine in machines]
        for digest in digests[1:]:
            assert not diff_digests(digests[0], digest)
        assert machines[0].last_trap.cause is TrapCause.ARITHMETIC_OVERFLOW

    def test_trap_in_delay_slot_identical(self):
        machine = assert_asm_equivalent(
            """
            main:
                b    past
                ldl  r26, r0, 0x401
            past:
                ret
                nop
            """
        )
        assert machine.last_trap.in_delay_slot

    def test_jump_to_misaligned_target_identical(self):
        machine = assert_asm_equivalent(
            """
            main:
                li    r16, 0x3
                jmp   alw, r16, 0
                nop
            """
        )
        assert machine.halted is HaltReason.TRAPPED

    def test_vectored_trap_handler_identical(self):
        # A guest handler catches the fault and resumes past it; both
        # engines must vector with identical accounting.
        source = """
        main:
            ldl  r16, r0, 0x401    ; misaligned: vectors to handler
            mov  r26, r5           ; resumed here with the cause code in r5
            ret
            nop
        handler:
            gtlpc r16              ; faulting PC
            mov  r5, r17           ; handler ABI: cause code in r17
            ret  r16, 4            ; resume at the instruction after
            nop
        """
        machines = []
        for engine in ENGINES:
            program = assemble(source)
            machine = RiscMachine(engine=engine)
            machine.trap_vectors.set(
                TrapCause.MISALIGNED_ACCESS, program.symbols["handler"]
            )
            program.load_into(machine.memory)
            machine.run(program.entry)
            machines.append(machine)
        digests = [state_digest(machine) for machine in machines]
        for digest in digests[1:]:
            assert not diff_digests(digests[0], digest)
        assert machines[0].trap_log and machines[0].trap_log[0].vectored
        assert machines[0].result == TrapCause.MISALIGNED_ACCESS.value


# The bgt's delay slot (the add #100) executes on every iteration,
# taken or fall-through: 5+4+3+2+1 + 5*100 = 515.
DELAY_SLOT_PROGRAM = """
main:
    li    r16, 5
    li    r17, 0
loop:
    add   r17, r17, r16
    sub   r16, r16, #1
    cmp   r16, #0
    bgt   loop
    add   r17, r17, #100
    mov   r26, r17
    ret
    nop
"""
DELAY_SLOT_RESULT = 515


def load_asm(source: str, engine: str) -> tuple[RiscMachine, object]:
    program = assemble(source)
    machine = RiscMachine(engine=engine)
    program.load_into(machine.memory)
    machine.reset(program.entry)
    return machine, program


def step_to_halt(machine: RiscMachine, limit: int = 100_000) -> None:
    for __ in range(limit):
        if machine.halted is not None:
            return
        machine.step()
    raise AssertionError("did not halt")


class TestCheckpointBothEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_rollback_reruns_identically(self, engine):
        machine, __ = load_asm(DELAY_SLOT_PROGRAM, engine)
        for __ in range(4):
            machine.step()
        cp = machine.checkpoint(track_memory_deltas=True)
        step_to_halt(machine)
        first = state_digest(machine)
        machine.restore(cp)
        step_to_halt(machine)
        second = state_digest(machine)
        assert not diff_digests(first, second)
        assert machine.result == DELAY_SLOT_RESULT

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rollback_mid_delay_slot(self, engine):
        # Checkpoint taken with a transfer pending (the delay-slot
        # instruction not yet executed): _pending_jump and npc must
        # round-trip, and on the fast engine the pre-decoded thunks must
        # keep pointing at the rewound (not rebound) state objects.
        machine, __ = load_asm(DELAY_SLOT_PROGRAM, engine)
        for __ in range(200):
            machine.step()
            if machine._pending_jump:
                break
        assert machine._pending_jump, "program never took a jump"
        cp = machine.checkpoint(track_memory_deltas=True)
        step_to_halt(machine)
        first = state_digest(machine)
        machine.restore(cp)
        assert machine._pending_jump
        step_to_halt(machine)
        assert not diff_digests(first, state_digest(machine))

    def test_mid_delay_slot_rollback_matches_reference(self):
        # The same mid-delay-slot rollback performed on both engines
        # must land on bit-identical final states.
        finals = []
        for engine in ENGINES:
            machine, __ = load_asm(DELAY_SLOT_PROGRAM, engine)
            for __ in range(200):
                machine.step()
                if machine._pending_jump:
                    break
            cp = machine.checkpoint(track_memory_deltas=True)
            step_to_halt(machine)
            machine.restore(cp)
            step_to_halt(machine)
            finals.append(state_digest(machine))
        for final in finals[1:]:
            assert not diff_digests(finals[0], final)


class TestDebuggerBothEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_breakpoint_and_trace(self, engine):
        machine, program = load_asm(DELAY_SLOT_PROGRAM, engine)
        debugger = Debugger(machine, symbols=dict(program.symbols))
        debugger.add_breakpoint("loop")
        event = debugger.cont()
        assert event.reason is StopReason.BREAKPOINT
        assert machine.pc == program.symbols["loop"]
        assert debugger.trace  # the step observer fed the ring buffer
        event = debugger.cont()  # second iteration of the loop
        assert event.reason is StopReason.BREAKPOINT
        final = debugger.cont()
        while final.reason is StopReason.BREAKPOINT:
            final = debugger.cont()
        assert final.reason is StopReason.HALTED
        assert machine.result == DELAY_SLOT_RESULT

    @pytest.mark.parametrize("engine", ENGINES)
    def test_finish_returns_to_caller(self, engine):
        # child's r26 overlaps the caller's r10 (window overlap), so the
        # return value lands in main's r10.
        source = """
        main:
            callr r31, child
            nop
            mov   r26, r10
            ret
            nop
        child:
            mov   r26, #9
            ret
            nop
        """
        machine, program = load_asm(source, engine)
        debugger = Debugger(machine, symbols=dict(program.symbols))
        debugger.add_breakpoint("child")
        assert debugger.cont().reason is StopReason.BREAKPOINT
        assert debugger.call_stack  # shadow stack saw the CALL
        event = debugger.finish()
        assert event.reason is StopReason.FINISHED
        assert not debugger.call_stack
        step_to_halt(machine)
        assert machine.result == 9

    @pytest.mark.parametrize("engine", ENGINES)
    def test_detached_debugger_stops_observing(self, engine):
        machine, program = load_asm(DELAY_SLOT_PROGRAM, engine)
        debugger = Debugger(machine, symbols=dict(program.symbols))
        debugger.detach()
        assert machine.observers.observer_count("step") == 0
        step_to_halt(machine)
        assert not debugger.trace
