"""Store-key correctness: keys agree iff shared fingerprints agree.

The manifest store's whole correctness argument is that the
``risc1-repro/job-key/v1`` input key and the PR 5 shared-section
fingerprint are two names for the same equivalence class: simulation is
a deterministic function of the key's inputs, so two jobs share a store
key iff their runs' shared sections are byte-identical.  These tests
pin both directions - on the pure key function (property-based) and on
real simulations across engines (concrete) - plus the store mechanics
(atomic layout, shared-byte verification, eviction, corruption) and the
compile-cache counters that satellite the service work.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import JobError, JobSpec
from repro.service.store import ManifestStore, StoreIntegrityError
from repro.workloads import benchmark
from repro.workloads.cache import (
    clear_compile_cache,
    compile_cache_info,
    compile_cached,
)

# A tiny fast workload for the concrete simulation tests.
SOURCE = """
int main(void) {
    int total;
    int index;
    total = 0;
    for (index = 0; index < 10; index = index + 1) {
        total = total + index;
    }
    return total;
}
"""


def _simulate(spec: JobSpec, engine: str):
    """Run *spec* on *engine* exactly the way the service workers do."""
    compiled = compile_cached(spec.source, use_windows=spec.use_windows)
    machine = compiled.make_machine(
        num_windows=spec.num_windows,
        memory_size=spec.memory_size,
        engine=engine,
    )
    machine.run(compiled.program.entry, max_steps=spec.max_steps)
    return machine.run_manifest(
        workload=spec.workload, seed=spec.seed, entry=compiled.program.entry
    )


# -- the key <-> fingerprint property ----------------------------------------

# The key inputs a client can vary; drawing pairs of these and comparing
# keys checks both directions of the iff on the pure function.
_spec_inputs = st.fixed_dictionaries({
    "workload": st.sampled_from(["alpha", "beta"]),
    "source": st.sampled_from([SOURCE, SOURCE + "\n"]),
    "seed": st.one_of(st.none(), st.integers(0, 3)),
    "num_windows": st.sampled_from([4, 8]),
    "memory_size": st.sampled_from([1 << 18, 1 << 20]),
    "max_steps": st.sampled_from([1000, 20_000_000]),
    "use_windows": st.booleans(),
})


@settings(max_examples=200, deadline=None)
@given(a=_spec_inputs, b=_spec_inputs)
def test_key_agrees_iff_inputs_agree(a, b):
    """Two jobs share a store key iff every key input matches.

    Determinism makes the runs a pure function of these inputs, so this
    is exactly "key agrees iff shared fingerprints agree" without
    paying for 400 simulations.
    """
    key_a = JobSpec(**a).key()
    key_b = JobSpec(**b).key()
    assert (key_a == key_b) == (a == b)


@settings(max_examples=50, deadline=None)
@given(inputs=_spec_inputs, engine_a=st.sampled_from(["reference", "fast"]),
       engine_b=st.sampled_from(["reference", "fast"]))
def test_key_is_engine_independent(inputs, engine_a, engine_b):
    """The engine never enters the key: shared sections are per-inputs."""
    spec_a = JobSpec(**inputs, engine=engine_a)
    spec_b = JobSpec(**inputs, engine=engine_b)
    assert spec_a.key() == spec_b.key()


@pytest.mark.parametrize("variant", [
    {"seed": 7},
    {"num_windows": 4},
    {"max_steps": 500_000},
    {"workload": "other", "source": SOURCE + "\n"},
])
def test_different_inputs_are_store_misses(tmp_path, variant):
    """Different seed/config/workload -> different key -> store miss."""
    base = JobSpec(workload="adhoc", source=SOURCE)
    other = JobSpec(**{**base.__dict__, **variant})
    store = ManifestStore(str(tmp_path))
    store.put(base.key(), _simulate(base, "reference"))
    assert base.key() != other.key()
    assert store.get(other.key(), "reference") is None
    assert store.stats()["misses"] == 1


def test_key_equality_matches_fingerprint_equality_end_to_end():
    """The iff, on real runs: vary one input, fingerprints diverge too."""
    base = JobSpec(workload="adhoc", source=SOURCE)
    reseeded = JobSpec(workload="adhoc", source=SOURCE, seed=3)
    rewindowed = JobSpec(workload="adhoc", source=SOURCE, num_windows=4)
    fp = {
        "base": _simulate(base, "reference").fingerprint(),
        "base2": _simulate(base, "fast").fingerprint(),
        "reseeded": _simulate(reseeded, "reference").fingerprint(),
        "rewindowed": _simulate(rewindowed, "reference").fingerprint(),
    }
    # same key (engine excluded) -> same fingerprint ...
    assert base.key() == base.key()
    assert fp["base"] == fp["base2"]
    # ... different key -> different fingerprint
    assert len({base.key(), reseeded.key(), rewindowed.key()}) == 3
    assert len({fp["base"], fp["reseeded"], fp["rewindowed"]}) == 3


# -- cross-engine sharing ----------------------------------------------------


def test_second_engine_is_shared_hit_with_separate_sections(tmp_path):
    """Same inputs on another engine: one shared.json, two engine files.

    The lookup before the second engine's section exists is a
    *shared hit* (architectural result proven, engine counters absent);
    after both puts the entry serves both engines from one shared
    document with byte-identical shared sections.
    """
    spec = JobSpec(workload="adhoc", source=SOURCE)
    key = spec.key()
    store = ManifestStore(str(tmp_path))

    store.put(key, _simulate(spec, "reference"))
    assert store.get(key, "fast") is None  # engine section missing
    assert store.stats()["shared_hits"] == 1
    assert store.has_shared(key)

    store.put(key, _simulate(spec, "fast"))
    assert store.engines(key) == ("fast", "reference")
    assert store.entry_count() == 1  # one key, not one per engine

    ref = store.get(key, "reference")
    fast = store.get(key, "fast")
    assert ref.shared_json() == fast.shared_json()
    assert ref.fingerprint() == store.shared_fingerprint(key)
    assert ref.engine == "reference" and fast.engine == "fast"
    assert ref.decode_cache != {} or fast.decode_cache != {}


def test_put_verifies_shared_bytes(tmp_path):
    """A put whose shared sections disagree with disk raises loudly."""
    spec = JobSpec(workload="adhoc", source=SOURCE)
    store = ManifestStore(str(tmp_path))
    store.put(spec.key(), _simulate(spec, "reference"))
    impostor = _simulate(
        JobSpec(workload="adhoc", source=SOURCE, seed=99), "reference"
    )
    with pytest.raises(StoreIntegrityError):
        store.put(spec.key(), impostor)
    assert store.stats()["integrity_errors"] == 1


def test_corrupt_entry_reads_as_miss(tmp_path):
    spec = JobSpec(workload="adhoc", source=SOURCE)
    key = spec.key()
    store = ManifestStore(str(tmp_path))
    store.put(key, _simulate(spec, "reference"))
    entry_dir = os.path.join(str(tmp_path), key[:2], key)
    with open(os.path.join(entry_dir, "shared.json"), "w") as handle:
        handle.write("{not json")
    assert store.get(key, "reference") is None
    assert store.stats()["integrity_errors"] == 1


def test_eviction_is_oldest_first_and_never_the_fresh_key(tmp_path):
    store = ManifestStore(str(tmp_path), max_entries=2)
    specs = [
        JobSpec(workload="adhoc", source=SOURCE, seed=seed)
        for seed in range(3)
    ]
    manifests = [_simulate(spec, "reference") for spec in specs]
    evicted = []
    for spec, manifest in zip(specs, manifests):
        evicted += store.put(spec.key(), manifest)
    assert evicted == [specs[0].key()]  # oldest out
    assert store.entry_count() == 2
    assert store.get(specs[2].key(), "reference") is not None
    assert store.stats()["evictions"] == 1


def test_stored_files_are_canonical_json(tmp_path):
    """Stored bytes are the canonical serialisations, byte for byte."""
    spec = JobSpec(workload="adhoc", source=SOURCE)
    key = spec.key()
    manifest = _simulate(spec, "reference")
    store = ManifestStore(str(tmp_path))
    store.put(key, manifest)
    entry_dir = os.path.join(str(tmp_path), key[:2], key)
    with open(os.path.join(entry_dir, "shared.json")) as handle:
        assert handle.read() == manifest.shared_json()
    with open(os.path.join(entry_dir, "engine-reference.json")) as handle:
        section = json.load(handle)
    assert section["engine"] == "reference"
    assert section["decode_cache"] == manifest.decode_cache


def test_store_rejects_bad_keys_and_engine_names(tmp_path):
    store = ManifestStore(str(tmp_path))
    with pytest.raises(ValueError):
        store.get("deadbeef", "reference")  # not 64 hex chars
    with pytest.raises(ValueError):
        store.get("g" * 64, "reference")
    with pytest.raises(ValueError):
        store.get("0" * 64, "../escape")


# -- JobSpec validation ------------------------------------------------------


def test_from_request_resolves_benchmarks_and_validates():
    spec = JobSpec.from_request({"workload": "towers", "seed": 1})
    assert spec.source == benchmark("towers").source
    assert spec.seed == 1 and spec.engine == "auto"
    for bad in [
        [],                                        # not an object
        {},                                        # neither workload nor source
        {"workload": "towers", "source": "x"},     # both
        {"workload": "nope"},                      # unknown benchmark
        {"source": "   "},                         # empty source
        {"workload": "towers", "engine": "nope"},  # unknown engine
        {"workload": "towers", "seed": "one"},     # bad seed
        {"workload": "towers", "config": {"num_windows": 1}},   # range
        {"workload": "towers", "config": {"mystery": True}},    # unknown
    ]:
        with pytest.raises(JobError):
            JobSpec.from_request(bad)


def test_codegen_version_invalidates_workload_fingerprint(monkeypatch):
    """A codegen bump must miss every stored entry, like the compile cache."""
    import repro.cpu.traceengine as traceengine

    spec = JobSpec(workload="adhoc", source=SOURCE)
    before = spec.key()
    monkeypatch.setattr(
        traceengine, "TRACE_CODEGEN_VERSION",
        traceengine.TRACE_CODEGEN_VERSION + 1,
    )
    assert spec.key() != before


# -- compile-cache counters (satellite) --------------------------------------


def test_compile_cache_counters_track_hits_misses_stores():
    clear_compile_cache()
    info = compile_cache_info()
    assert (info["hits"], info["misses"], info["stores"]) == (0, 0, 0)

    compile_cached(SOURCE)
    info = compile_cache_info()
    assert info["misses"] == 1 and info["stores"] == 1 and info["hits"] == 0

    compile_cached(SOURCE)
    info = compile_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1  # warm reuse

    compile_cached(SOURCE, use_windows=False)  # different cache key
    assert compile_cache_info()["misses"] == 2
    clear_compile_cache()
    assert compile_cache_info()["hits"] == 0


def test_manifest_host_section_carries_compile_cache_counters():
    clear_compile_cache()
    spec = JobSpec(workload="adhoc", source=SOURCE)
    from repro.telemetry.manifest import capture_manifest

    compiled = compile_cached(spec.source)
    machine = compiled.make_machine()
    machine.run(compiled.program.entry)
    manifest = capture_manifest(machine, workload="adhoc")
    cache = manifest.host["compile_cache"]
    assert cache["entries"] >= 1 and cache["stores"] >= 1
    # Host facts never enter the canonical/fingerprinted forms.
    assert "host" not in json.loads(manifest.shared_json())
    assert "host" not in json.loads(manifest.canonical_json())
    assert "host" in manifest.as_dict(include_host=True)
