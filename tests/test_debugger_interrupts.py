"""Tests for the debugger and the interrupt architecture."""

import pytest

from repro import RiscMachine, assemble
from repro.cpu.debugger import Debugger, StopReason

PROGRAM = """
main:
    li    r16, 0
    li    r10, 3
    callr r31, bump
    nop
    mov   r16, r10
    stl   r16, r0, 0x800
    mov   r26, r16
    ret
    nop

bump:
    add   r26, r26, #1
    ret
    nop
"""


def make_debugger(source=PROGRAM):
    program = assemble(source)
    machine = RiscMachine()
    program.load_into(machine.memory)
    machine.reset(program.entry)
    return Debugger(machine, symbols=dict(program.symbols)), program


class TestDebugger:
    def test_breakpoint_by_symbol(self):
        debugger, __ = make_debugger()
        debugger.add_breakpoint("bump")
        event = debugger.cont()
        assert event.reason is StopReason.BREAKPOINT
        assert event.pc == debugger.symbols["bump"]

    def test_breakpoint_by_address(self):
        debugger, program = make_debugger()
        debugger.add_breakpoint(program.symbols["bump"])
        assert debugger.cont().reason is StopReason.BREAKPOINT

    def test_unknown_symbol_rejected(self):
        debugger, __ = make_debugger()
        with pytest.raises(KeyError):
            debugger.add_breakpoint("nowhere")

    def test_watchpoint_fires_on_store(self):
        debugger, __ = make_debugger()
        debugger.add_watchpoint(0x800)
        event = debugger.cont()
        assert event.reason is StopReason.WATCHPOINT
        assert "0x800" in event.detail

    def test_single_step(self):
        debugger, __ = make_debugger()
        event = debugger.step()
        assert event.reason is StopReason.STEP
        assert debugger.machine.stats.instructions == 1

    def test_continue_to_halt(self):
        debugger, __ = make_debugger()
        event = debugger.cont()
        assert event.reason is StopReason.HALTED
        assert debugger.machine.result == 4

    def test_finish_runs_out_of_callee(self):
        debugger, __ = make_debugger()
        debugger.add_breakpoint("bump")
        debugger.cont()
        depth_in_callee = debugger.machine.call_depth
        event = debugger.finish()
        assert event.reason is StopReason.FINISHED
        assert debugger.machine.call_depth == depth_in_callee - 1

    def test_backtrace_tracks_frames(self):
        debugger, __ = make_debugger()
        debugger.add_breakpoint("bump")
        debugger.cont()
        debugger.step()  # delay slot lands us inside bump
        trace = debugger.backtrace()
        assert len(trace) == 1
        assert "bump" in trace[0] or "0x" in trace[0]

    def test_registers_view(self):
        debugger, __ = make_debugger()
        debugger.step()
        view = debugger.registers()
        assert view["r16"] == 0
        assert "pc" in view and "cwp" in view

    def test_disassemble_around_marks_pc(self):
        debugger, __ = make_debugger()
        lines = debugger.disassemble_around()
        assert any(line.startswith("=>") for line in lines)

    def test_trace_ring_buffer(self):
        debugger, __ = make_debugger()
        for __ in range(5):
            debugger.step()
        listing = debugger.trace_listing()
        assert len(listing) == 5
        assert listing[0].startswith("0x")

    def test_step_after_halt(self):
        debugger, __ = make_debugger()
        debugger.cont()
        assert debugger.step().reason is StopReason.HALTED


INTERRUPT_PROGRAM = """
main:
    li    r5, 0            ; r5 (global): interrupt evidence
    getpsw r16
    or    r16, r16, #16    ; set the interrupt-enable bit
    putpsw r16, #0
loop:
    add   r6, r6, #1       ; r6 (global): loop counter
    cmp   r6, #60
    blt   loop
    nop
    mov   r26, r5
    ret
    nop

handler:
    gtlpc r16              ; interrupted PC
    add   r5, r5, #1       ; leave evidence in a global
    retint r16, 0
    nop
"""


class TestInterrupts:
    def run_with_interrupt(self, fire_after: int):
        program = assemble(INTERRUPT_PROGRAM)
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.reset(program.entry)
        handler = program.symbols["handler"]
        fired = False
        while machine.halted is None:
            machine.step()
            if not fired and machine.stats.instructions >= fire_after:
                machine.request_interrupt(handler)
                fired = True
        return machine

    def test_interrupt_taken_and_resumed(self):
        machine = self.run_with_interrupt(fire_after=10)
        assert machine.interrupts_taken == 1
        assert machine.result == 1  # handler ran exactly once
        # and the main loop still completed normally
        assert machine.regs.read(machine.psw.cwp, 6) == 60

    def test_handler_gets_fresh_window(self):
        machine = self.run_with_interrupt(fire_after=10)
        # one call (the interrupt entry), two returns (retint + main's ret)
        assert machine.stats.calls == 1
        assert machine.stats.returns == 2

    def test_interrupt_held_while_disabled(self):
        program = assemble("""
        main:
            li   r6, 0
        loop:
            add  r6, r6, #1
            cmp  r6, #30
            blt  loop
            nop
            mov  r26, r6
            ret
            nop
        handler:
            retint r16, 0
            nop
        """)
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.reset(program.entry)
        machine.step()
        machine.request_interrupt(program.symbols["handler"])
        while machine.halted is None:
            machine.step()
        # interrupts were never enabled: the request stays pending
        assert machine.interrupts_taken == 0
        assert machine.pending_interrupt is not None
        assert machine.result == 30
