"""Tests for the eleven benchmark programs.

The heavyweight full-matrix execution lives in benchmarks/; here we
verify structural properties cheaply and run the fast programs
differentially end-to-end.
"""

import pytest

from repro.cc import compile_for_risc
from repro.hll import run_program
from repro.hll.parser import parse_program
from repro.hll.sema import analyze
from repro.workloads import BENCHMARKS, benchmark

FAST = ("ackermann", "towers", "puzzle_subscript", "puzzle_pointer")


class TestSuiteStructure:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARKS) == 11

    def test_unique_names(self):
        names = [bench.name for bench in BENCHMARKS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert benchmark("towers").label == "Towers(10)"
        with pytest.raises(KeyError):
            benchmark("nope")

    def test_paper_letter_benchmarks_present(self):
        labels = {bench.label for bench in BENCHMARKS}
        assert {"E", "F", "H", "K", "I"} <= labels

    def test_every_benchmark_documents_scaling(self):
        for bench in BENCHMARKS:
            assert bench.scaling_note
            assert bench.description

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_all_sources_typecheck(self, bench):
        analyze(parse_program(bench.source))

    def test_call_intensive_flags(self):
        flagged = {bench.name for bench in BENCHMARKS if bench.call_intensive}
        assert "ackermann" in flagged
        assert "towers" in flagged


class TestKnownResults:
    """Pin the interpreter ground truth so workload edits are deliberate."""

    EXPECTED = {
        "ackermann": 61,
        "towers": 1023,
        "puzzle_subscript": 5000302,
        "puzzle_pointer": 5000302,
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED), ids=str)
    def test_interpreter_value(self, name):
        value = run_program(benchmark(name).source, max_ops=20_000_000).value
        assert value == self.EXPECTED[name]

    def test_puzzle_variants_agree(self):
        sub = run_program(benchmark("puzzle_subscript").source, max_ops=20_000_000)
        ptr = run_program(benchmark("puzzle_pointer").source, max_ops=20_000_000)
        assert sub.value == ptr.value


class TestEndToEnd:
    @pytest.mark.parametrize("name", FAST, ids=str)
    def test_risc_matches_interpreter(self, name):
        bench = benchmark(name)
        expected = run_program(bench.source, max_ops=20_000_000).value
        value, machine = compile_for_risc(bench.source).run()
        assert value == expected
        assert machine.stats.instructions > 1000

    def test_ackermann_exercises_window_traps(self):
        __, machine = compile_for_risc(benchmark("ackermann").source).run()
        assert machine.stats.window_overflows > 100
        assert machine.stats.window_overflows == machine.stats.window_underflows

    def test_towers_is_call_dominated(self):
        __, machine = compile_for_risc(benchmark("towers").source).run()
        jumps = machine.stats.by_category["JUMP"]
        assert jumps / machine.stats.instructions > 0.18

    def test_all_benchmarks_compile_for_risc(self):
        for bench in BENCHMARKS:
            compiled = compile_for_risc(bench.source)
            assert compiled.code_size_bytes > 0
