"""Tests for the Mini-C lexer, parser, and semantic analysis."""

import pytest

from repro.errors import LexError, ParseError, SemanticError
from repro.hll import ast
from repro.hll.lexer import Kind, tokenize
from repro.hll.parser import parse_program
from repro.hll.sema import analyze


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("int foo while whilefoo")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [Kind.KEYWORD, Kind.IDENT, Kind.KEYWORD, Kind.IDENT]

    def test_numbers(self):
        tokens = tokenize("42 0x2A")
        assert tokens[0].value == 42
        assert tokens[1].value == 42

    def test_char_literal(self):
        assert tokenize("'a'")[0].value == 97
        assert tokenize("'\\n'")[0].value == 10

    def test_string_literal(self):
        assert tokenize('"hi\\n"')[0].text == "hi\n"

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a <= b << c && d")]
        assert "<=" in texts and "<<" in texts and "&&" in texts

    def test_comments_stripped(self):
        tokens = tokenize("a // comment\nb /* block\nstill */ c")
        idents = [t.text for t in tokens if t.kind is Kind.IDENT]
        assert idents == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens if t.kind is Kind.IDENT]
        assert lines == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* forever")


class TestParser:
    def test_function_structure(self):
        program = parse_program("int add(int a, int b) { return a + b; }")
        func = program.function("add")
        assert [p.name for p in func.params] == ["a", "b"]
        assert isinstance(func.body.body[0], ast.Return)

    def test_global_with_initializers(self):
        program = parse_program("int x = 5; int a[3] = {1,2,3}; char s[4] = \"ab\";")
        assert program.globals[0].init == 5
        assert program.globals[1].init_list == [1, 2, 3]
        assert program.globals[2].init_string == "ab"

    def test_precedence(self):
        program = parse_program("int main() { return 1 + 2 * 3; }")
        ret = program.function("main").body.body[0]
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_unary_minus_folds_literals(self):
        program = parse_program("int main() { return -5; }")
        assert program.function("main").body.body[0].value.value == -5

    def test_pointer_declarations(self):
        program = parse_program("int main() { int *p; int **q; return 0; }")
        decls = program.function("main").body.body
        assert decls[0].decl_type.pointer == 1
        assert decls[1].decl_type.pointer == 2

    def test_array_param_decays(self):
        program = parse_program("int f(int a[]) { return a[0]; } int main() { return 0; }")
        assert program.function("f").params[0].type.pointer == 1

    def test_for_without_clauses(self):
        program = parse_program("int main() { for (;;) break; return 0; }")
        loop = program.function("main").body.body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_dangling_else(self):
        program = parse_program(
            "int main() { if (1) if (0) return 1; else return 2; return 3; }"
        )
        outer = program.function("main").body.body[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None

    def test_syntax_errors(self):
        for bad in ["int main() { return }", "int main( {}", "int 5x;",
                    "int main() { int a[x]; }", "int main() { 1 +; }"]:
            with pytest.raises(ParseError):
                parse_program(bad)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 0;")


class TestSema:
    def check(self, source):
        return analyze(parse_program(source))

    def test_annotates_types(self):
        checked = self.check("int main() { int x = 1; return x; }")
        ret = checked.node.function("main").body.body[1]
        assert str(ret.value.type) == "int"

    def test_pointer_arith_types(self):
        checked = self.check("int a[4]; int main() { int *p = a + 1; return *p; }")
        decl = checked.node.function("main").body.body[0]
        assert decl.init.type.pointer == 1

    def test_escape_marking(self):
        checked = self.check("int main() { int x; int *p = &x; return *p; }")
        info = checked.functions["main"]
        names = {s.name: s for s in info.locals}
        assert names["x"].escapes
        assert not names["p"].escapes

    def test_globals_are_memory_resident(self):
        checked = self.check("int g; int main() { return g; }")
        assert checked.globals["g"].in_memory

    def test_arrays_are_memory_resident(self):
        checked = self.check("int main() { int a[2]; return a[0]; }")
        assert checked.functions["main"].locals[0].in_memory

    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            self.check("int main() { return nope; }")

    def test_redeclaration_in_scope(self):
        with pytest.raises(SemanticError):
            self.check("int main() { int x; int x; return 0; }")

    def test_shadowing_in_nested_scope_allowed(self):
        self.check("int main() { int x; { int x; x = 1; } return x; }")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError):
            self.check("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            self.check("int main() { return g(); }")

    def test_pointer_argument_type(self):
        with pytest.raises(SemanticError):
            self.check("int f(int *p) { return *p; } int main() { return f(3); }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            self.check("int main() { break; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemanticError):
            self.check("int a[2]; int b[2]; int main() { a = b; return 0; }")

    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(SemanticError):
            self.check("int main() { 1 = 2; return 0; }")

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(SemanticError):
            self.check("int main() { int x; return *x; }")

    def test_address_of_rvalue_rejected(self):
        with pytest.raises(SemanticError):
            self.check("int main() { int *p = &(1+2); return 0; }")

    def test_string_in_expression_becomes_pooled_array(self):
        checked = self.check('int f(char *s) { return s[0]; } '
                             'int main() { return f("hi"); }')
        pooled = [name for name in checked.globals if name.startswith("__str_")]
        assert len(pooled) == 1
        assert checked.globals[pooled[0]].type.array_size == 3  # "hi" + NUL

    def test_identical_strings_share_a_pool_entry(self):
        checked = self.check('int f(char *s) { return s[0]; } '
                             'int main() { return f("x") + f("x"); }')
        pooled = [name for name in checked.globals if name.startswith("__str_")]
        assert len(pooled) == 1

    def test_string_not_assignable_to_int(self):
        with pytest.raises(SemanticError):
            self.check('int main() { int x = "hi"; return x; }')

    def test_string_initializer_needs_char_array(self):
        with pytest.raises(SemanticError):
            self.check('int a[4] = "hi"; int main() { return 0; }')

    def test_oversized_initializer_rejected(self):
        with pytest.raises(SemanticError):
            self.check("int a[2] = {1, 2, 3}; int main() { return 0; }")
