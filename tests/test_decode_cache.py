"""LRU accounting of :class:`repro.isa.decode.CachingDecoder`.

The eviction counter feeds ``decode_evictions`` on
:class:`~repro.evaluation.common.BenchmarkRecord`, so it must stay exact
on every path the engines drive - including the tiny-bound and
disabled-cache configurations that write-invalidation recompiles can
push through.  The main test checks the decoder against an independent
LRU model on random word streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import assemble
from repro.isa.decode import CachingDecoder, decode

def _word_pool() -> list[int]:
    """Distinct valid instruction words to draw streams from."""
    program = assemble(
        """
        main:
            add  r16, r17, #1
            sub  r18, r19, #2
            and  r20, r21, #3
            or   r22, r23, #4
            xor  r24, r25, #5
            sll  r16, r17, #6
            srl  r18, r19, #7
            sra  r20, r21, #8
            ldl  r16, r0, 0x40
            stl  r16, r0, 0x44
            cmp  r16, #0
            mov  r26, r16
            ret
            nop
        """
    )
    pool = set()
    for word in program.to_words():
        try:
            decode(word)
        except Exception:
            continue
        pool.add(word)
    return sorted(pool)


_WORDS = _word_pool()


class _ModelLru:
    """Textbook LRU over a list; the oracle the decoder must match."""

    def __init__(self, max_entries):
        self.max_entries = max_entries
        self.order = []  # least-recent first
        self.hits = self.misses = self.evictions = 0

    def access(self, word):
        if word in self.order:
            self.hits += 1
            self.order.remove(word)
            self.order.append(word)
            return
        self.misses += 1
        if self.max_entries <= 0:
            return
        while len(self.order) >= self.max_entries:
            self.order.pop(0)
            self.evictions += 1
        self.order.append(word)


class TestLruModel:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(0, 6),
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=60),
    )
    def test_matches_reference_model(self, max_entries, stream):
        decoder = CachingDecoder(max_entries=max_entries)
        model = _ModelLru(max_entries)
        for word in stream:
            inst = decoder.decode(word)
            model.access(word)
            assert inst == decode(word)  # never a wrong decode
        info = decoder.cache_info()
        assert info["hits"] == model.hits
        assert info["misses"] == model.misses
        assert info["evictions"] == model.evictions
        assert info["entries"] == len(model.order)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 6),
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=60),
    )
    def test_counter_invariants(self, max_entries, stream):
        decoder = CachingDecoder(max_entries=max_entries)
        for word in stream:
            decoder.decode(word)
        info = decoder.cache_info()
        # Every miss either became a resident entry or was later evicted.
        assert info["misses"] == info["entries"] + info["evictions"]
        assert info["entries"] <= max_entries
        assert info["hits"] + info["misses"] == len(stream)


class TestEdgeCases:
    def test_zero_capacity_never_evicts_and_never_crashes(self):
        decoder = CachingDecoder(max_entries=0)
        for word in _WORDS * 2:
            decoder.decode(word)
        info = decoder.cache_info()
        assert info["entries"] == 0
        assert info["evictions"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 2 * len(_WORDS)

    def test_recompile_churn_keeps_counts_exact(self):
        # The write-invalidation pattern: a small set of PCs is decoded,
        # rewritten, and re-decoded over and over through a tiny cache.
        decoder = CachingDecoder(max_entries=2)
        a, b, c = _WORDS[:3]
        for __ in range(5):
            decoder.decode(a)
            decoder.decode(b)
            decoder.decode(c)  # evicts a
            decoder.decode(a)  # evicts b
        info = decoder.cache_info()
        assert info["misses"] == info["entries"] + info["evictions"]
        assert info["entries"] == 2
        # round 1: a,b,c,a = 4 misses, 2 evictions; every later round
        # hits nothing but the rotation (a resident at round start):
        # b,c,a miss; a->b->c->a churn evicts 3 per round.
        assert info["hits"] == 4  # the leading `a` of rounds 2..5
        assert info["misses"] == 4 + 4 * 3

    def test_shrunk_bound_drains_overflow(self):
        decoder = CachingDecoder(max_entries=4)
        for word in _WORDS[:4]:
            decoder.decode(word)
        assert decoder.cache_info()["entries"] == 4
        decoder.max_entries = 2
        decoder.decode(_WORDS[4])  # must drain down to the new bound
        info = decoder.cache_info()
        assert info["entries"] == 2
        assert info["evictions"] == 3  # 4 resident -> 1 survivor + new
