"""Tests for the chip-area model and the HLL statistics (T1/T7 inputs)."""

from collections import Counter

from repro.chip import CHIP_BUDGETS, area_budget_for, risc_floorplan
from repro.chip.area import budget
from repro.hll.stats import (
    REPORTED_OPS,
    VAX_STYLE_WEIGHTS,
    dynamic_op_counts,
    weighted_frequency,
)


class TestChipArea:
    def test_risc_control_is_small(self):
        risc = area_budget_for("RISC I")
        assert risc.control_percent < 10.0

    def test_microcoded_control_dominates(self):
        for name in ("MC68000", "Z8002", "iAPX-432/43201"):
            assert CHIP_BUDGETS[name].control_percent > 30.0

    def test_risc_spends_area_on_registers_instead(self):
        risc = area_budget_for("RISC I")
        m68k = area_budget_for("MC68000")
        assert risc.register_percent > 5 * m68k.register_percent

    def test_percentages_sum_to_100(self):
        for chip in CHIP_BUDGETS.values():
            total = (chip.control_percent + chip.register_percent
                     + 100.0 * chip.datapath_area / chip.total)
            assert abs(total - 100.0) < 1e-9

    def test_budget_scales_with_microcode(self):
        small = budget("a", microcode_bits=0, instructions=31, registers=32)
        large = budget("b", microcode_bits=64 * 1024, instructions=31, registers=32)
        assert large.control_area > small.control_area

    def test_floorplan_fractions_sum_to_one(self):
        fractions = [fraction for __, fraction in risc_floorplan()]
        assert abs(sum(fractions) - 1.0) < 1e-9
        assert all(f > 0 for f in fractions)

    def test_register_file_is_largest_risc_block(self):
        plan = dict(risc_floorplan())
        assert plan["register file (138 x 32)"] > plan["control (hardwired)"]


class TestHllStats:
    CALL_HEAVY = """
    int leaf(int x) { return x + 1; }
    int main() {
        int i; int s = 0;
        for (i = 0; i < 50; i = i + 1) { s = leaf(s); }
        return s;
    }
    """

    def test_dynamic_counts(self):
        counts = dynamic_op_counts([self.CALL_HEAVY])
        assert counts["call"] == 51
        assert counts["loop"] == 50

    def test_weighted_table_shape(self):
        counts = dynamic_op_counts([self.CALL_HEAVY])
        rows = weighted_frequency(counts)
        assert [row.operation for row in rows][0] == "CALL"
        by_name = {row.operation: row for row in rows}
        # raw occurrence of CALL is modest, weighted dominates
        assert by_name["CALL"].memory_ref_percent > by_name["CALL"].occurrence_percent

    def test_percent_columns_sum_to_100(self):
        counts = dynamic_op_counts([self.CALL_HEAVY])
        rows = weighted_frequency(counts)
        for column in ("occurrence_percent", "instruction_percent",
                       "memory_ref_percent"):
            assert abs(sum(getattr(row, column) for row in rows) - 100.0) < 1e-6

    def test_weights_cover_reported_ops(self):
        for op in REPORTED_OPS:
            assert op in VAX_STYLE_WEIGHTS

    def test_empty_counts_do_not_crash(self):
        rows = weighted_frequency(Counter())
        assert len(rows) == len(REPORTED_OPS)
