"""Block-engine specifics: invalidation, watchdogs, rollback, fuzzing.

The differential harness in ``tests/test_engine_equivalence.py`` already
sweeps every workload and trap path across all three engines.  This file
targets what is unique to the block compiler:

* self-modifying code must invalidate compiled blocks (including the
  block currently executing) and re-compile from the rewritten image;
* watchdog budgets (``max_steps`` / ``max_cycles``) must stop at exactly
  the same instruction as the reference engine, even mid-block;
* checkpoints taken mid-block and mid-delay-slot must round-trip through
  ``restore`` and resume through the block path bit-identically;
* randomly generated instruction sequences (hypothesis) must execute
  identically on reference, fast, and block engines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RiscMachine, assemble
from repro.cpu.equivalence import diff_digests, state_digest
from repro.cpu.machine import HaltReason

from repro.cpu.engines import default_sweep_engines

ENGINES = default_sweep_engines()


def assert_all_engines_identical(source: str, *, max_steps: int = 20_000_000):
    machines = []
    for engine in ENGINES:
        program = assemble(source)
        machine = RiscMachine(engine=engine)
        program.load_into(machine.memory)
        machine.run(program.entry, max_steps=max_steps)
        machines.append(machine)
    digests = [state_digest(machine) for machine in machines]
    for engine, digest in zip(ENGINES[1:], digests[1:]):
        mismatches = diff_digests(digests[0], digest)
        assert not mismatches, f"[{engine}] " + "\n".join(mismatches)
    return machines[0]


# The store at `stl` rewrites the `li r26, 1` *later in the same
# straight-line block* with the word at `donor` (li r26, 42); the block
# engine must abort the running block and re-compile from the patched
# image, exactly as the reference engine simply fetches the new word.
SAME_BLOCK_PATCH = """
main:
    ldl  r16, r0, donor
    stl  r16, r0, slot
    nop
slot:
    li   r26, 1
    ret
    nop
donor:
    li   r26, 42
"""

# The store patches the *head* of the loop block that is currently
# executing (an address already behind the store's program point), so
# the patched instruction takes effect on the next iteration:
# r18 = 1 (original) + 42 (patched) = 43.
LOOP_HEAD_PATCH = """
main:
    li   r17, 0
    li   r18, 0
loop:
    li   r16, 1
    add  r18, r18, r16
    ldl  r19, r0, donor
    stl  r19, r0, loop
    add  r17, r17, #1
    cmp  r17, #2
    blt  loop
    nop
    mov  r26, r18
    ret
    nop
donor:
    li   r16, 42
"""


class TestSelfModifyingCode:
    def test_same_block_patch_identical(self):
        machine = assert_all_engines_identical(SAME_BLOCK_PATCH)
        assert machine.halted is HaltReason.RETURNED
        assert machine.result == 42

    def test_loop_head_patch_identical(self):
        machine = assert_all_engines_identical(LOOP_HEAD_PATCH)
        assert machine.halted is HaltReason.RETURNED
        assert machine.result == 43

    def test_block_engine_recompiles_after_patch(self):
        program = assemble(LOOP_HEAD_PATCH)
        machine = RiscMachine(engine="block")
        program.load_into(machine.memory)
        machine.run(program.entry)
        assert machine.result == 43


# Same program as the equivalence suite's delay-slot workhorse: the
# bgt's slot executes on every iteration, 5+4+3+2+1 + 5*100 = 515.
DELAY_SLOT_PROGRAM = """
main:
    li    r16, 5
    li    r17, 0
loop:
    add   r17, r17, r16
    sub   r16, r16, #1
    cmp   r16, #0
    bgt   loop
    add   r17, r17, #100
    mov   r26, r17
    ret
    nop
"""
DELAY_SLOT_RESULT = 515


class TestWatchdogExactness:
    @pytest.mark.parametrize("limit", [1, 2, 3, 5, 8, 13, 21, 34, 100])
    def test_step_limit_stops_identically(self, limit):
        # A block must never overshoot the step budget: the engine has
        # to hand the tail of a partially affordable block back to the
        # reference path so STEP_LIMIT lands on the same instruction.
        digests = []
        for engine in ENGINES:
            program = assemble(DELAY_SLOT_PROGRAM)
            machine = RiscMachine(engine=engine)
            program.load_into(machine.memory)
            machine.run(program.entry, max_steps=limit)
            digests.append(state_digest(machine))
        for engine, digest in zip(ENGINES[1:], digests[1:]):
            mismatches = diff_digests(digests[0], digest)
            assert not mismatches, f"[{engine}] " + "\n".join(mismatches)

    @pytest.mark.parametrize("cycles", [1, 7, 19, 50, 200])
    def test_cycle_limit_stops_identically(self, cycles):
        digests = []
        for engine in ENGINES:
            program = assemble(DELAY_SLOT_PROGRAM)
            machine = RiscMachine(engine=engine)
            program.load_into(machine.memory)
            machine.run(program.entry, max_cycles=cycles)
            digests.append(state_digest(machine))
        for engine, digest in zip(ENGINES[1:], digests[1:]):
            mismatches = diff_digests(digests[0], digest)
            assert not mismatches, f"[{engine}] " + "\n".join(mismatches)


class TestBlockRollback:
    def _mid_slot_run(self, engine):
        """Checkpoint mid-delay-slot, finish via run_loop, rewind, redo."""
        program = assemble(DELAY_SLOT_PROGRAM)
        machine = RiscMachine(engine=engine)
        program.load_into(machine.memory)
        machine.reset(program.entry)
        for __ in range(200):
            machine.step()
            if machine._pending_jump:
                break
        assert machine._pending_jump, "program never took a jump"
        cp = machine.checkpoint(track_memory_deltas=True)
        machine.engine.run_loop(machine, 100_000, None, None)
        first = state_digest(machine)
        machine.restore(cp)
        assert machine._pending_jump
        machine.engine.run_loop(machine, 100_000, None, None)
        second = state_digest(machine)
        assert not diff_digests(first, second)
        assert machine.result == DELAY_SLOT_RESULT
        return first

    def test_mid_delay_slot_rollback_through_block_path(self):
        # The rewound run resumes through the block engine's compiled
        # path (not the oracle), and must still match the reference.
        finals = [self._mid_slot_run(engine) for engine in ENGINES]
        for engine, final in zip(ENGINES[1:], finals[1:]):
            mismatches = diff_digests(finals[0], final)
            assert not mismatches, f"[{engine}] " + "\n".join(mismatches)

    def test_restore_flushes_compiled_blocks(self):
        # A full-image restore rewrites memory wholesale; every compiled
        # block must be dropped, not just ones a store touched.
        program = assemble(DELAY_SLOT_PROGRAM)
        machine = RiscMachine(engine="block")
        program.load_into(machine.memory)
        machine.reset(program.entry)
        cp = machine.checkpoint()
        machine.engine.run_loop(machine, 100_000, None, None)
        first = state_digest(machine)
        machine.restore(cp)
        machine.engine.run_loop(machine, 100_000, None, None)
        assert not diff_digests(first, state_digest(machine))

    def test_rerun_after_halt(self):
        program = assemble(DELAY_SLOT_PROGRAM)
        machine = RiscMachine(engine="block")
        program.load_into(machine.memory)
        machine.run(program.entry)
        first = machine.result
        machine.run(program.entry)  # resets and re-executes
        assert machine.result == first == DELAY_SLOT_RESULT


# -- hypothesis: random instruction sequences --------------------------------

_REGS = list(range(16, 26))
_SCRATCH = 0x9000

_alu = st.tuples(
    st.sampled_from(["add", "sub", "and", "or", "xor"]),
    st.sampled_from(_REGS), st.sampled_from(_REGS),
    st.integers(-256, 255),
).map(lambda t: f"{t[0]} r{t[1]}, r{t[2]}, #{t[3]}")

_alu_scc = st.tuples(
    st.sampled_from(["adds", "subs", "ands", "ors", "xors"]),
    st.sampled_from(_REGS), st.sampled_from(_REGS),
    st.integers(-256, 255),
).map(lambda t: f"{t[0]} r{t[1]}, r{t[2]}, #{t[3]}")

_alu_reg = st.tuples(
    st.sampled_from(["add", "sub", "and", "or", "xor"]),
    st.sampled_from(_REGS), st.sampled_from(_REGS), st.sampled_from(_REGS),
).map(lambda t: f"{t[0]} r{t[1]}, r{t[2]}, r{t[3]}")

_shift = st.tuples(
    st.sampled_from(["sll", "srl", "sra"]),
    st.sampled_from(_REGS), st.sampled_from(_REGS),
    st.integers(0, 31),
).map(lambda t: f"{t[0]} r{t[1]}, r{t[2]}, #{t[3]}")

# r15 is loaded with the scratch base in the prologue (main is a leaf,
# so the out registers are free); 13-bit displacements select the slot.
_store_load = st.tuples(
    st.sampled_from(_REGS), st.sampled_from(_REGS), st.integers(0, 63),
).map(lambda t: f"stl r{t[0]}, r15, {4 * t[2]}\n"
                f"    ldl r{t[1]}, r15, {4 * t[2]}")

# A forward-only conditional skip: terminates regardless of the flags,
# exercises scc + condition codes + the taken and fall-through arms of
# the block terminator (the delay slot is a real instruction).
_branch = st.tuples(
    st.sampled_from(["bgt", "ble", "beq", "bne", "bge", "blt"]),
    st.sampled_from(_REGS), st.integers(-64, 63), st.sampled_from(_REGS),
).map(lambda t: ("cmp r{a}, #{imm}\n"
                 "    {cond} __skip_MARK\n"
                 "    add r{d}, r{d}, #1\n"
                 "    add r{d}, r{d}, #2\n"
                 "__skip_MARK:").format(cond=t[0], a=t[1], imm=t[2], d=t[3]))

_op = st.one_of(_alu, _alu_scc, _alu_reg, _shift, _store_load, _branch)


def _render_program(seeds, ops):
    lines = ["main:", f"    li   r15, {_SCRATCH}"]
    for reg, value in zip(_REGS, seeds):
        lines.append(f"    li   r{reg}, {value}")
    for index, op in enumerate(ops):
        lines.append("    " + op.replace("MARK", str(index)))
    lines.append("    mov  r26, r16")
    for reg in _REGS[1:]:
        lines.append(f"    add  r26, r26, r{reg}")
    lines.append("    ret")
    lines.append("    nop")
    return "\n".join(lines)


class TestRandomPrograms:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-1_000_000, 1_000_000),
                 min_size=len(_REGS), max_size=len(_REGS)),
        st.lists(_op, min_size=1, max_size=40),
    )
    def test_random_sequences_identical_on_all_engines(self, seeds, ops):
        source = _render_program(seeds, ops)
        machine = assert_all_engines_identical(source)
        assert machine.halted is HaltReason.RETURNED
