"""The observability layer: registry, run manifests, trace export.

Four contracts under test:

* **registry semantics** - one name, one instrument, one type; the
  disabled registry hands out a shared null instrument and stays empty;
* **run-boundary instrumentation** - the execution stack touches the
  registry a constant number of times per run, never per instruction
  (the structural form of the "<3% no-op overhead" requirement, which a
  wall-clock assertion could only test flakily);
* **manifest determinism** - shared sections byte-identical and
  same-fingerprint across all three engines, round-trippable through
  JSON, schema-validated, and worker-count independent when aggregated;
* **event export** - JSONL streams match a golden byte-for-byte, and
  the adapters map existing tool output onto the same schema.
"""

import io
import json

import pytest

from repro import RiscMachine, assemble
from repro.evaluation.run_all import collect_manifests
from repro.telemetry import (
    EVENT_SCHEMA,
    JsonlEventWriter,
    MetricsRegistry,
    NULL_REGISTRY,
    RunManifest,
    TraceEventExporter,
    aggregate_manifests,
    events_from_call_trace,
    events_from_injections,
    events_from_schedule,
    read_events,
    validate_manifest,
)
from repro.telemetry.manifest import MANIFEST_SCHEMA, ManifestError, schema_paths
from repro.telemetry.registry import _NULL_INSTRUMENT
from repro.telemetry.report import load_manifests, render_report
from repro.workloads import benchmark
from repro.workloads.cache import compile_cached

from repro.cpu.engines import default_sweep_engines

ENGINES = default_sweep_engines()


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_buckets_and_mean(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # <=1, <=10, inf
        assert hist.mean == pytest.approx(105.5 / 3)
        with pytest.raises(ValueError, match="must be sorted"):
            MetricsRegistry().histogram("bad", buckets=(10.0, 1.0))

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        timer = registry.get("t")
        assert timer.histogram.count == 1
        assert timer.histogram.sum >= 0

    def test_introspection(self):
        registry = MetricsRegistry()
        registry.counter("b", help="second")
        registry.counter("a", help="first")
        assert registry.names() == ["a", "b"]
        assert registry.as_dict()["a"] == {"kind": "counter", "value": 0}
        assert registry.describe()[0] == {
            "name": "a", "kind": "counter", "help": "first",
        }
        registry.reset()
        assert len(registry) == 0

    def test_disabled_registry_is_null_and_empty(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("anything")
        assert counter is _NULL_INSTRUMENT
        assert counter is registry.timer("other.name")
        counter.inc(1_000_000)   # all mutators are no-ops
        registry.get("anything")
        assert len(registry) == 0 and registry.as_dict() == {}
        assert not NULL_REGISTRY.enabled


class TestRunBoundaryInstrumentation:
    """The structural no-op-overhead guarantee.

    A counting registry subclass records every factory call; a full
    block-engine towers run (tens of thousands of instructions) must
    touch the registry only at the run boundary - a constant, tiny
    number of times.  This is what bounds enabled *and* disabled
    overhead: the hot loops never see the registry at all.
    """

    class CountingRegistry(MetricsRegistry):
        def __init__(self):
            super().__init__(enabled=True)
            self.factory_calls = 0

        def _register(self, name, kind, factory):
            self.factory_calls += 1
            return super()._register(name, kind, factory)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_registry_touched_per_run_not_per_instruction(self, engine):
        registry = self.CountingRegistry()
        compiled = compile_cached(benchmark("towers").source)
        machine = compiled.make_machine(engine=engine)
        machine.telemetry = registry
        machine.run(compiled.program.entry)
        assert machine.stats.instructions > 30_000
        assert registry.factory_calls <= 8  # run-boundary only
        assert registry.get("sim.runs").value == 1
        assert registry.get("sim.instructions").value == machine.stats.instructions
        assert registry.get("sim.cycles").value == machine.stats.cycles
        assert registry.get("sim.run_seconds").histogram.count == 1

    def test_default_machine_uses_null_registry(self):
        machine = RiscMachine()
        assert machine.telemetry is NULL_REGISTRY


# -- run manifests -----------------------------------------------------------


def towers_manifest(engine: str) -> RunManifest:
    compiled = compile_cached(benchmark("towers").source)
    machine = compiled.make_machine(engine=engine)
    machine.run(compiled.program.entry)
    return machine.run_manifest(workload="towers", entry=compiled.program.entry)


class TestRunManifest:
    def test_shared_sections_identical_across_engines(self):
        manifests = {engine: towers_manifest(engine) for engine in ENGINES}
        shared = {m.shared_json() for m in manifests.values()}
        assert len(shared) == 1
        fingerprints = {m.fingerprint() for m in manifests.values()}
        assert len(fingerprints) == 1
        engines = {m.engine for m in manifests.values()}
        assert engines == set(ENGINES)  # simulation sections still differ

    def test_engine_detail_reflects_backend(self):
        reference = towers_manifest("reference")
        fast = towers_manifest("fast")
        block = towers_manifest("block")
        assert reference.engine_detail == {}
        assert fast.engine_detail["thunks_compiled"] > 0
        assert block.engine_detail["blocks_compiled"] > 0

    def test_round_trip_and_validation(self):
        manifest = towers_manifest("reference")
        doc = manifest.as_dict()
        assert validate_manifest(doc) == []
        back = RunManifest.from_json(manifest.to_json())
        assert back.canonical_json() == manifest.canonical_json()
        assert back.fingerprint() == manifest.fingerprint()

    def test_validation_catches_corruption(self):
        doc = towers_manifest("reference").as_dict()
        doc["stats"]["instructions"] = -1
        assert any("instructions" in p for p in validate_manifest(doc))
        doc = towers_manifest("reference").as_dict()
        doc["run"]["halt"] = "NOT_A_REASON"
        assert any("halt" in p for p in validate_manifest(doc))
        assert validate_manifest({"schema": "wrong/tag"})
        with pytest.raises(ManifestError):
            RunManifest.from_dict({"schema": "wrong/tag"})

    def test_host_section_excluded_from_canonical_forms(self):
        manifest = towers_manifest("reference")
        assert manifest.host.get("wall_seconds") is not None
        assert "wall_seconds" not in manifest.canonical_json()
        assert "host" not in json.loads(manifest.canonical_json())

    def test_schema_paths_are_stable_keys(self):
        doc = towers_manifest("block").as_dict()
        paths = schema_paths(doc)
        assert "run.workload" in paths
        assert "stats.instructions" in paths
        assert paths == sorted(paths)
        # breakdown maps are leaves: opcode names must not leak in
        assert not any(p.startswith("stats.by_opcode.") for p in paths)


class TestManifestAggregation:
    NAMES = ("towers", "ackermann")

    def test_parallel_aggregate_byte_identical(self):
        serial = aggregate_manifests(collect_manifests(self.NAMES))
        parallel = aggregate_manifests(
            collect_manifests(self.NAMES, workers=2)
        )
        dump = lambda doc: json.dumps(doc, sort_keys=True)
        assert dump(serial) == dump(parallel)
        assert serial["count"] == len(self.NAMES)
        assert set(serial["fingerprints"]) == {
            f"{name}/reference" for name in self.NAMES
        }

    def test_report_renders_aggregates(self, tmp_path):
        aggregate = aggregate_manifests(collect_manifests(("towers",)))
        path = tmp_path / "eval.json"
        path.write_text(json.dumps(aggregate))
        manifests = load_manifests([str(path)])
        assert len(manifests) == 1
        text = render_report(manifests)
        assert "towers" in text and "instructions" in text
        markdown = render_report(manifests, fmt="markdown")
        assert markdown.startswith("|")


# -- event export ------------------------------------------------------------


CALL_PROGRAM = """
main:
    li    r10, 21        ; argument: caller's r10 = callee's r26
    callr r31, double
    nop
    mov   r26, r10       ; pass the result up
    ret
    nop
double:
    add   r26, r26, r26
    ret
    nop
"""

GOLDEN_TRACE = """\
{"engine": "reference", "event": "run_begin", "events": ["call", "return", "halt"], "schema": "risc1-repro/trace-event/v1", "seq": 0}
{"cycle": 1, "depth": 2, "event": "call", "seq": 1, "step": 1}
{"cycle": 4, "depth": 1, "event": "return", "seq": 2, "step": 4}
{"cycle": 7, "depth": 0, "event": "return", "seq": 3, "step": 7}
{"cycle": 9, "event": "halt", "reason": "RETURNED", "seq": 4, "step": 9}
{"cycle": 9, "event": "run_end", "halt": "RETURNED", "seq": 5, "step": 9}
"""


class TestEventExport:
    def run_traced(self, events) -> tuple[RiscMachine, str]:
        program = assemble(CALL_PROGRAM)
        machine = RiscMachine()
        program.load_into(machine.memory)
        sink = io.StringIO()
        with TraceEventExporter(machine, JsonlEventWriter(sink), events=events):
            machine.run(program.entry)
        return machine, sink.getvalue()

    def test_boundary_stream_matches_golden(self):
        machine, stream = self.run_traced(("call", "return", "halt"))
        assert machine.result == 42
        assert stream == GOLDEN_TRACE

    def test_stream_envelope_invariants(self):
        _, stream = self.run_traced(("step", "call", "return", "halt"))
        events = read_events(io.StringIO(stream))
        assert events[0]["schema"] == EVENT_SCHEMA
        assert all("schema" not in e for e in events[1:])
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "run_begin"
        assert events[-1]["event"] == "run_end"
        steps = [e for e in events if e["event"] == "step"]
        assert len(steps) == 9  # one per retired instruction
        assert steps[0]["opcode"] == "ADD"  # li expands to add r10, r0, 21

    def test_exporter_rejects_unknown_events(self):
        machine = RiscMachine()
        with pytest.raises(ValueError, match="unknown exporter events"):
            TraceEventExporter(
                machine, JsonlEventWriter(io.StringIO()), events=("nope",)
            )

    def test_call_trace_adapter(self):
        machine, _ = self.run_traced(("halt",))
        events = events_from_call_trace(list(machine.call_trace))
        kinds = [e["event"] for e in events]
        # the initial entry into main is itself a +1 in the trace
        assert kinds == ["call", "call", "return", "return"]
        assert [e["depth"] for e in events] == [1, 2, 1, 0]

    def test_injection_adapter(self):
        from repro.faults.injector import FaultInjector
        from repro.faults.models import FaultKind, FaultSpec, FaultTarget, FaultTrigger

        program = assemble(CALL_PROGRAM)
        machine = RiscMachine()
        program.load_into(machine.memory)
        spec = FaultSpec(
            target=FaultTarget.REGISTER, kind=FaultKind.BIT_FLIP,
            location=12, bits=(0,), trigger=FaultTrigger(at_cycle=3),
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        machine.run(program.entry)
        injector.detach()
        events = events_from_injections(injector.events)
        assert len(events) == 1
        assert events[0]["event"] == "injection"
        assert events[0]["target"] == "register"
        assert events[0]["original"] != events[0]["mutated"]

    def test_schedule_adapter(self):
        from repro.multicore import run_scenario

        sim = run_scenario("timer_ticks", num_cores=2)
        events = events_from_schedule(sim.schedule)
        assert len(events) == len(sim.schedule)
        assert all(e["event"] == "slice" for e in events)
        # slices of the same core carry monotonically increasing starts,
        # and the instruction totals reconcile with the schedule summary
        total = sum(e["instructions"] for e in events)
        assert total == sum(executed for _, _, executed in sim.schedule)
        assert {e["core"] for e in events} == {0, 1}
