"""Differential tests for the extended workload suite."""

import pytest

from repro.baselines import M68KTraits, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.hll import run_program
from repro.workloads.extended import EXTENDED_BENCHMARKS

EXPECTED = {
    "sieve": 168,  # pi(1000)
    "fib_iter": 102334155,  # fib(40)
    "binsearch": 67,
}


class TestExtendedSuite:
    def test_five_extra_benchmarks(self):
        assert len(EXTENDED_BENCHMARKS) == 5

    @pytest.mark.parametrize("bench", EXTENDED_BENCHMARKS, ids=lambda b: b.name)
    def test_interp_vs_risc(self, bench):
        expected = run_program(bench.source, max_ops=50_000_000).value
        value, __ = compile_for_risc(bench.source).run()
        assert value == expected

    @pytest.mark.parametrize("name", sorted(EXPECTED), ids=str)
    def test_known_values(self, name):
        bench = next(b for b in EXTENDED_BENCHMARKS if b.name == name)
        assert run_program(bench.source, max_ops=50_000_000).value == EXPECTED[name]

    def test_crc_on_m68k_model(self):
        bench = next(b for b in EXTENDED_BENCHMARKS if b.name == "crc")
        expected = run_program(bench.source, max_ops=50_000_000).value
        generated = compile_for_cisc(compile_to_ir(bench.source), M68KTraits())
        executor = CiscExecutor(generated.program, M68KTraits())
        assert executor.run() == expected

    def test_matmul_exercises_multiply_runtime(self):
        bench = next(b for b in EXTENDED_BENCHMARKS if b.name == "matmul")
        compiled = compile_for_risc(bench.source)
        assert "__mul" in compiled.asm_source
