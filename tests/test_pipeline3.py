"""Tests for the execution tracer and the three-stage pipeline model."""

from repro import RiscMachine, assemble
from repro.cc import compile_for_risc
from repro.cpu.pipeline3 import estimate_cycles
from repro.cpu.tracing import ExecutionTracer, TraceRecord
from repro.isa.formats import Instruction
from repro.isa.opcodes import Opcode


def trace_of(source: str, limit: int = 100_000):
    program = assemble(source)
    machine = RiscMachine()
    program.load_into(machine.memory)
    tracer = ExecutionTracer(machine, limit=limit)
    return tracer.run(program.entry)


class TestTracer:
    def test_captures_every_instruction(self):
        trace = trace_of("main:\n li r16, 1\n add r16, r16, #1\n ret\n nop")
        assert len(trace) == 4
        assert trace[0].inst.opcode is Opcode.ADD  # li -> add r16, r0, #1

    def test_marks_taken_jumps(self):
        trace = trace_of("main:\n b skip\n nop\nskip:\n ret\n nop")
        assert trace[0].taken_jump
        assert not trace[1].taken_jump

    def test_marks_memory_instructions(self):
        trace = trace_of("main:\n ldl r16, r0, 0x400\n ret\n nop")
        assert trace[0].is_memory and trace[0].is_load

    def test_limit_respected(self):
        trace = trace_of(
            "main:\nloop:\n add r16, r16, #1\n cmp r16, #100\n bne loop\n nop\n ret\n nop",
            limit=10,
        )
        assert len(trace) == 10


def rec(opcode, dest=0, rs1=0, s2=0, imm=True, taken=False, pc=0):
    return TraceRecord(pc=pc, inst=Instruction(opcode, dest=dest, rs1=rs1,
                                               s2=s2, imm=imm),
                       taken_jump=taken)


class TestThreeStageModel:
    def test_alu_only_identical(self):
        trace = [rec(Opcode.ADD, dest=1, rs1=1) for __ in range(10)]
        estimate = estimate_cycles(trace)
        assert estimate.two_stage_cycles == estimate.three_stage_cycles == 10

    def test_load_without_use_is_free_in_three_stage(self):
        trace = [
            rec(Opcode.LDL, dest=5, rs1=0),
            rec(Opcode.ADD, dest=1, rs1=2, s2=3, imm=False),
        ]
        estimate = estimate_cycles(trace)
        assert estimate.two_stage_cycles == 3
        assert estimate.three_stage_cycles == 2
        assert estimate.load_use_stalls == 0

    def test_load_use_interlock(self):
        trace = [
            rec(Opcode.LDL, dest=5, rs1=0),
            rec(Opcode.ADD, dest=1, rs1=5),
        ]
        estimate = estimate_cycles(trace)
        assert estimate.three_stage_cycles == 3
        assert estimate.load_use_stalls == 1

    def test_load_to_r0_never_stalls(self):
        trace = [
            rec(Opcode.LDL, dest=0, rs1=0),
            rec(Opcode.ADD, dest=1, rs1=0),
        ]
        assert estimate_cycles(trace).load_use_stalls == 0

    def test_store_data_dependency_counts(self):
        trace = [
            rec(Opcode.LDL, dest=5, rs1=0),
            rec(Opcode.STL, dest=5, rs1=2),  # stores read dest as data
        ]
        assert estimate_cycles(trace).load_use_stalls == 1

    def test_speedup_on_memory_heavy_code(self):
        trace = [rec(Opcode.LDL, dest=i % 8 + 1, rs1=0) for i in range(20)]
        estimate = estimate_cycles(trace)
        assert estimate.speedup > 1.5

    def test_empty_trace(self):
        estimate = estimate_cycles([])
        assert estimate.speedup == 1.0


class TestOnRealPrograms:
    def test_three_stage_never_slower(self):
        source = """
        int a[32];
        int main() {
            int i; int s = 0;
            for (i = 0; i < 32; i = i + 1) a[i] = i;
            for (i = 0; i < 32; i = i + 1) s = s + a[i];
            return s;
        }
        """
        compiled = compile_for_risc(source)
        machine = compiled.make_machine()
        trace = ExecutionTracer(machine).run(compiled.program.entry)
        estimate = estimate_cycles(trace)
        assert estimate.three_stage_cycles <= estimate.two_stage_cycles
        assert estimate.speedup >= 1.0
