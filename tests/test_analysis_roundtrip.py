"""Encode -> decode -> render -> reassemble round trips.

Every text-section word of every bundled and extended workload must
survive the full loop: the compiler encodes it, the disassembler
renders it, and the assembler reproduces the identical word at the
identical address.  This pins the three codecs to one another - a
regression in any of them breaks the loop.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import assemble
from repro.asm.disassembler import disassemble, disassemble_program
from repro.cc import compile_for_risc
from repro.isa.decode import decode
from repro.isa.encode import encode
from repro.isa.formats import Instruction
from repro.isa.opcodes import ALL_SPECS, Format, Opcode
from repro.workloads import BENCHMARKS
from repro.workloads.extended import EXTENDED_BENCHMARKS

ALL = list(BENCHMARKS) + list(EXTENDED_BENCHMARKS)
WORD = 4


@pytest.mark.parametrize("bench", ALL, ids=lambda bench: bench.name)
def test_text_section_roundtrip(bench):
    program = compile_for_risc(bench.source).program
    words = program.to_words()
    lo = program.symbols["__text_start"]
    hi = program.symbols["__text_end"]
    for address in range(lo, hi, WORD):
        word = words[(address - program.base) // WORD]
        text = disassemble(word, address)
        rebuilt = assemble(text, base=address).to_words()
        assert rebuilt == [word], (
            f"{bench.name} @ {address:#x}: {text!r} reassembled to "
            f"{rebuilt[0]:#010x}, expected {word:#010x}"
        )


@pytest.mark.parametrize("bench", [b for b in ALL if b.name in
                                   ("f_bit_test", "towers", "sed_batch")],
                         ids=lambda bench: bench.name)
def test_annotated_listing_structure(bench):
    program = compile_for_risc(bench.source).program
    lines = disassemble_program(
        program.to_words(), program.base,
        annotate=True, entry=program.entry, symbols=program.symbols,
    )
    text = "\n".join(lines)
    # Function labels appear as headers; slots and targets are marked.
    assert "main:" in text
    assert "_main:" in text
    assert "[delay slot]" in text
    assert "<_main>" in text
    # Unannotated mode is unchanged: one line per word, no headers.
    plain = disassemble_program(program.to_words(), program.base)
    assert len(plain) == len(program.to_words())
    assert not any(line.endswith(":") for line in plain)


def test_annotated_listing_marks_unreached_words_as_data():
    program = assemble("""
    .org 8
main:
    ret
    nop
""")
    lines = disassemble_program(
        program.to_words(), annotate=True,
        entry=program.entry, symbols=program.symbols,
    )
    assert lines[0].endswith(".word 0x00000000")
    assert any("main:" == line for line in lines)


@given(
    opcode=st.sampled_from([op for op in ALL_SPECS
                            if ALL_SPECS[op].fmt is Format.LONG]),
    dest=st.integers(0, 31),
    cond=st.integers(1, 15),
    imm19=st.integers(-(1 << 18), (1 << 18) - 1),
    address=st.integers(0, 1 << 10).map(lambda n: n * WORD),
)
def test_long_format_roundtrip(opcode, dest, cond, imm19, address):
    spec = ALL_SPECS[opcode]
    if opcode is not Opcode.LDHI:
        # Relative transfers must land on an in-range word boundary.
        imm19 = imm19 & ~3
    inst = Instruction(
        opcode,
        dest=cond if spec.uses_cond else dest,
        imm19=imm19,
    )
    word = encode(inst)
    assert encode(decode(word)) == word
    text = disassemble(word, address)
    rebuilt = assemble(text, base=address).to_words()
    assert rebuilt == [word]
