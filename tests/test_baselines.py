"""Tests for the generic CISC core and the four machine trait models."""

import pytest

from repro.baselines import (
    ALL_TRAITS,
    Abs,
    AutoDec,
    AutoInc,
    CInst,
    CiscExecutor,
    CiscOp,
    CiscProgram,
    Imm,
    Ind,
    M68KTraits,
    Pdp11Traits,
    Reg,
    VaxTraits,
    Z8002Traits,
)
from repro.baselines.framework import FP, SP
from repro.errors import BaselineError


def run_instructions(instructions, traits=None, data=()):
    program = CiscProgram(instructions=instructions, labels={"main": 0},
                          data=list(data))
    executor = CiscExecutor(program, traits or VaxTraits())
    return executor.run(), executor


class TestExecutor:
    def test_mov_and_rts(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Reg(0), Imm(42))),
            CInst(CiscOp.RTS),
        ])
        assert value == 42

    def test_alu_semantics(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Reg(0), Imm(10))),
            CInst(CiscOp.MUL, (Reg(0), Imm(-3))),
            CInst(CiscOp.SUB, (Reg(0), Imm(2))),
            CInst(CiscOp.RTS),
        ])
        assert value == -32

    def test_division_truncates_toward_zero(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Reg(0), Imm(-7))),
            CInst(CiscOp.DIV, (Reg(0), Imm(2))),
            CInst(CiscOp.RTS),
        ])
        assert value == -3

    def test_mod_follows_dividend_sign(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Reg(0), Imm(-7))),
            CInst(CiscOp.MOD, (Reg(0), Imm(2))),
            CInst(CiscOp.RTS),
        ])
        assert value == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(BaselineError):
            run_instructions([
                CInst(CiscOp.MOV, (Reg(0), Imm(1))),
                CInst(CiscOp.DIV, (Reg(0), Imm(0))),
                CInst(CiscOp.RTS),
            ])

    def test_memory_operands(self):
        value, executor = run_instructions([
            CInst(CiscOp.MOV, (Abs(0x500), Imm(7))),
            CInst(CiscOp.MOV, (Reg(0), Abs(0x500))),
            CInst(CiscOp.ADD, (Reg(0), Abs(0x500))),
            CInst(CiscOp.RTS),
        ])
        assert value == 14
        assert executor.memory.stats.data_refs >= 3

    def test_indirect_with_displacement(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Reg(1), Imm(0x600))),
            CInst(CiscOp.MOV, (Ind(1, 4), Imm(99))),
            CInst(CiscOp.MOV, (Reg(0), Abs(0x604))),
            CInst(CiscOp.RTS),
        ])
        assert value == 99

    def test_autoincrement_and_autodecrement(self):
        value, executor = run_instructions([
            CInst(CiscOp.MOV, (Reg(1), Imm(0x600))),
            CInst(CiscOp.MOV, (AutoInc(1), Imm(5))),
            CInst(CiscOp.MOV, (AutoInc(1), Imm(6))),
            CInst(CiscOp.MOV, (Reg(2), Imm(0x608))),
            CInst(CiscOp.MOV, (Reg(0), AutoDec(2))),
            CInst(CiscOp.ADD, (Reg(0), Abs(0x600))),
            CInst(CiscOp.RTS),
        ])
        assert value == 11  # 6 (at 0x604) + 5 (at 0x600)

    def test_byte_sized_access(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Abs(0x500, size=1), Imm(0x1FF))),
            CInst(CiscOp.MOV, (Reg(0), Abs(0x500, size=1))),
            CInst(CiscOp.RTS),
        ])
        assert value == 0xFF

    def test_push_pop(self):
        value, __ = run_instructions([
            CInst(CiscOp.PUSH, (Imm(31),)),
            CInst(CiscOp.POP, (Reg(0),)),
            CInst(CiscOp.RTS),
        ])
        assert value == 31

    def test_save_restore_roundtrip(self):
        value, __ = run_instructions([
            CInst(CiscOp.MOV, (Reg(1), Imm(10))),
            CInst(CiscOp.MOV, (Reg(2), Imm(20))),
            CInst(CiscOp.SAVE, regs=(1, 2)),
            CInst(CiscOp.CLR, (Reg(1),)),
            CInst(CiscOp.CLR, (Reg(2),)),
            CInst(CiscOp.RESTORE, regs=(1, 2)),
            CInst(CiscOp.MOV, (Reg(0), Reg(1))),
            CInst(CiscOp.ADD, (Reg(0), Reg(2))),
            CInst(CiscOp.RTS),
        ])
        assert value == 30

    def test_jsr_rts_nesting(self):
        program = CiscProgram(
            instructions=[
                CInst(CiscOp.JSR, target="sub"),
                CInst(CiscOp.ADD, (Reg(0), Imm(1))),
                CInst(CiscOp.RTS),
                CInst(CiscOp.MOV, (Reg(0), Imm(100)), label="sub"),
                CInst(CiscOp.RTS),
            ],
            labels={"main": 0, "sub": 3},
        )
        executor = CiscExecutor(program, VaxTraits())
        assert executor.run() == 101

    def test_conditional_branches(self):
        program = CiscProgram(
            instructions=[
                CInst(CiscOp.CMP, (Imm(3), Imm(5))),
                CInst(CiscOp.BCC, target="less", relop="<"),
                CInst(CiscOp.MOV, (Reg(0), Imm(0))),
                CInst(CiscOp.RTS),
                CInst(CiscOp.MOV, (Reg(0), Imm(1)), label="less"),
                CInst(CiscOp.RTS),
            ],
            labels={"main": 0, "less": 4},
        )
        assert CiscExecutor(program, VaxTraits()).run() == 1

    def test_unsigned_relops(self):
        program = CiscProgram(
            instructions=[
                CInst(CiscOp.CMP, (Imm(-1), Imm(1))),  # 0xFFFFFFFF vs 1 unsigned
                CInst(CiscOp.BCC, target="big", relop="gtu"),
                CInst(CiscOp.MOV, (Reg(0), Imm(0))),
                CInst(CiscOp.RTS),
                CInst(CiscOp.MOV, (Reg(0), Imm(1)), label="big"),
                CInst(CiscOp.RTS),
            ],
            labels={"main": 0, "big": 4},
        )
        assert CiscExecutor(program, VaxTraits()).run() == 1

    def test_step_limit(self):
        program = CiscProgram(
            instructions=[CInst(CiscOp.BRA, target="main")],
            labels={"main": 0},
        )
        with pytest.raises(BaselineError):
            CiscExecutor(program, VaxTraits()).run(max_steps=50)

    def test_data_preload(self):
        value, __ = run_instructions(
            [CInst(CiscOp.MOV, (Reg(0), Abs(0x400))), CInst(CiscOp.RTS)],
            data=[(0x400, (123).to_bytes(4, "big"))],
        )
        assert value == 123


class TestTraits:
    @pytest.mark.parametrize("traits", ALL_TRAITS, ids=lambda t: t.name)
    def test_every_instruction_priced(self, traits):
        samples = [
            CInst(CiscOp.MOV, (Reg(1), Imm(5))),
            CInst(CiscOp.ADD, (Reg(1), Abs(0x100))),
            CInst(CiscOp.MUL, (Reg(1), Reg(2))),
            CInst(CiscOp.DIV, (Reg(1), Ind(2, 8))),
            CInst(CiscOp.JSR, target="x"),
            CInst(CiscOp.RTS),
            CInst(CiscOp.SAVE, regs=(1, 2, 3)),
            CInst(CiscOp.BCC, target="x", relop="=="),
            CInst(CiscOp.PUSH, (Reg(1),)),
        ]
        for inst in samples:
            assert traits.bytes(inst) > 0
            assert traits.cycles(inst) > 0

    def test_vax_short_literal_compact(self):
        vax = VaxTraits()
        small = CInst(CiscOp.MOV, (Reg(1), Imm(5)))
        large = CInst(CiscOp.MOV, (Reg(1), Imm(500000)))
        assert vax.bytes(small) < vax.bytes(large)

    def test_vax_densest_on_memory_ops(self):
        inst = CInst(CiscOp.ADD, (Reg(1), Ind(FP, -8)))
        vax = VaxTraits().bytes(inst)
        m68k = M68KTraits().bytes(inst)
        assert vax <= m68k

    def test_mul_div_cost_more_than_add(self):
        for traits in ALL_TRAITS:
            add = CInst(CiscOp.ADD, (Reg(1), Reg(2)))
            mul = CInst(CiscOp.MUL, (Reg(1), Reg(2)))
            div = CInst(CiscOp.DIV, (Reg(1), Reg(2)))
            assert traits.cycles(mul) > traits.cycles(add)
            assert traits.cycles(div) > traits.cycles(mul)

    def test_save_cost_scales_with_registers(self):
        for traits in ALL_TRAITS:
            few = CInst(CiscOp.SAVE, regs=(1,))
            many = CInst(CiscOp.SAVE, regs=tuple(range(1, 9)))
            assert traits.cycles(many) > traits.cycles(few)

    def test_identity_metadata(self):
        names = {traits.name for traits in ALL_TRAITS}
        assert names == {"VAX-11/780", "PDP-11/70", "MC68000", "Z8002"}
        for traits in ALL_TRAITS:
            assert traits.cycle_time_ns > 0
            assert len(traits.pool) >= 4

    def test_static_bytes_sums_instructions(self):
        program = CiscProgram(
            instructions=[
                CInst(CiscOp.MOV, (Reg(0), Imm(1))),
                CInst(CiscOp.RTS),
            ],
            labels={"main": 0},
        )
        vax = VaxTraits()
        expected = vax.bytes(program.instructions[0]) + vax.bytes(program.instructions[1])
        assert program.static_bytes(vax) == expected

    def test_sp_fp_reserved(self):
        for traits in ALL_TRAITS:
            assert SP not in traits.pool
            assert FP not in traits.pool
            assert 0 not in traits.pool  # r0 carries return values
