"""Crash-safe distributed campaigns: sharding, journal, supervision.

The load-bearing invariant under test everywhere here: the executed
trials are a pure function of the campaign config, so however a
campaign is sharded, killed, resumed, retried, or parallelised, its
fingerprint is byte-identical to the uninterrupted serial run's.

A module-scoped serial reference run (small, ``towers``-only) keeps
the suite fast; every scenario compares against its fingerprint.
"""

import io
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    FingerprintStream,
    Outcome,
    TrialTimeoutError,
    config_digest,
    injection_record,
    run_campaign,
    trial_digest,
)
from repro.faults.distributed import (
    JournalError,
    RetryPolicy,
    StreamingAggregator,
    StreamingCampaignReport,
    TrialJournal,
    TrialSupervisor,
    compose_fingerprints,
    execute_trial,
    recover_journal,
    run_distributed_campaign,
    shard_bounds,
    shard_schedule,
)
from repro.telemetry import (
    JsonlEventWriter,
    MetricsRegistry,
    events_from_journal,
    validate_campaign_manifest,
)

CONFIG = CampaignConfig(seed=7, injections=12, benchmarks=("towers",))
N = CONFIG.injections


@pytest.fixture(scope="module")
def serial_report():
    """The uninterrupted serial reference run (batch path)."""
    return run_campaign(CONFIG)


@pytest.fixture(scope="module")
def serial_fp(serial_report):
    return serial_report.fingerprint()


@pytest.fixture(scope="module")
def serial_records(serial_report):
    return [injection_record(r) for r in serial_report.results]


@pytest.fixture(scope="module")
def full_journal_lines(tmp_path_factory):
    """A complete journalled run's raw journal lines (header + trials)."""
    path = tmp_path_factory.mktemp("journal") / "full.jsonl"
    run_campaign(CONFIG, journal=str(path))
    with open(path, "rb") as handle:
        return handle.readlines()


class TestSharding:
    def test_bounds_are_contiguous_and_balanced(self):
        assert shard_bounds(10, 3) == ((0, 4), (4, 7), (7, 10))
        assert shard_bounds(12, 4) == ((0, 3), (3, 6), (6, 9), (9, 12))
        assert shard_bounds(2, 5) == ((0, 1), (1, 2), (2, 2), (2, 2), (2, 2))
        with pytest.raises(ValueError):
            shard_bounds(10, 0)

    def test_schedule_is_deterministic(self):
        a = shard_schedule(CONFIG, 3)
        b = shard_schedule(CONFIG, 3)
        assert [t.spec for t in a.trials] == [t.spec for t in b.trials]
        assert a.bounds == b.bounds
        assert [t.index for t in a.trials] == list(range(N))

    def test_shard_accessors(self):
        plan = shard_schedule(CONFIG, 5)
        assert sum(plan.sizes()) == N
        recombined = [t for i in range(5) for t in plan.shard(i)]
        assert recombined == list(plan.trials)
        assert plan.shard_of(0) == 0
        assert plan.shard_of(N - 1) == 4
        with pytest.raises(IndexError):
            plan.shard(5)
        with pytest.raises(IndexError):
            plan.shard_of(N)

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_fingerprints_compose_to_serial(
        self, n_shards, serial_fp, serial_records
    ):
        plan = shard_schedule(CONFIG, n_shards)
        streams = [
            [trial_digest(r) for r in serial_records[start:stop]]
            for start, stop in plan.bounds
        ]
        assert compose_fingerprints(streams) == serial_fp

    def test_single_shard_execution_matches_digest_stream(
        self, serial_records
    ):
        plan = shard_schedule(CONFIG, 3)
        report = run_campaign(CONFIG, stream=True, shards=3, shard_index=1)
        start, stop = plan.bounds[1]
        expected = FingerprintStream()
        for record in serial_records[start:stop]:
            expected.add_record(record)
        assert report.fingerprint() == expected.hexdigest()
        assert report.count == stop - start


class TestStreamingReport:
    def test_streaming_matches_batch(self, serial_report, serial_fp):
        report = run_campaign(CONFIG, stream=True)
        assert isinstance(report, StreamingCampaignReport)
        assert report.fingerprint() == serial_fp
        assert report.summary() == serial_report.summary()
        assert report.rate_table().render() == serial_report.rate_table().render()
        assert report.outcome_counts() == serial_report.outcome_counts()

    def test_streaming_retains_no_results(self):
        report = run_campaign(CONFIG, stream=True)
        assert not hasattr(report, "results")
        assert not hasattr(report, "as_records")

    def test_manifest_validates_and_has_v2_sections(self, serial_fp):
        report = run_campaign(CONFIG, stream=True, shards=2)
        doc = report.manifest()
        assert validate_campaign_manifest(doc) == []
        assert doc["shards"]["count"] == 2
        assert sum(doc["shards"]["sizes"]) == N
        assert len(doc["shards"]["fingerprints"]) == 2
        assert doc["resume"]["resumed_trials"] == 0
        assert doc["summary"]["fingerprint"] == serial_fp

    def test_batch_manifest_has_same_schema_sections(self, serial_report):
        batch_doc = serial_report.manifest()
        assert validate_campaign_manifest(batch_doc) == []
        assert batch_doc["shards"]["count"] == 1

    def test_aggregator_rejects_out_of_order_folds(self, serial_records):
        agg = StreamingAggregator(CONFIG, range(N))
        agg.add(0, serial_records[0])
        with pytest.raises(ValueError, match="expected trial 1"):
            agg.add(2, serial_records[2])

    def test_fold_events_counts_by_kind(self):
        agg = StreamingAggregator(CONFIG, range(N))
        folded = agg.fold_events([
            {"event": "trial"}, {"event": "trial"}, {"event": "retry"},
            {"not_an_event": 1},
        ])
        assert folded == 3
        assert agg.event_counts == {"trial": 2, "retry": 1}


class TestJournal:
    def test_create_refuses_overwrite(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        TrialJournal.create(path, CONFIG).close()
        with pytest.raises(FileExistsError):
            TrialJournal.create(path, CONFIG)

    def test_roundtrip_and_index(self, tmp_path, serial_records):
        path = str(tmp_path / "j.jsonl")
        with TrialJournal.create(path, CONFIG, index_interval=2) as journal:
            for index, record in enumerate(serial_records[:5]):
                journal.append(index, record)
        seen = []
        stats = recover_journal(
            path, sink=lambda t, a, r: seen.append((t, r))
        )
        assert stats.completed == 5
        assert stats.torn_lines == 0
        assert stats.digest == config_digest(CONFIG)
        assert [t for t, _ in seen] == list(range(5))
        assert [r for _, r in seen] == serial_records[:5]
        index_doc = json.loads(open(path + ".idx").read())
        assert index_doc["completed"] == 5
        assert index_doc["last_trial"] == 4

    def test_append_enforces_increasing_trials(self, tmp_path, serial_records):
        journal = TrialJournal.create(str(tmp_path / "j.jsonl"), CONFIG)
        journal.append(3, serial_records[3])
        with pytest.raises(JournalError, match="appended after"):
            journal.append(3, serial_records[3])

    def test_torn_final_line_is_dropped(self, full_journal_lines, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with open(path, "wb") as handle:
            handle.writelines(full_journal_lines[:4])
            handle.write(full_journal_lines[4][:10])
        stats = recover_journal(path)
        assert stats.completed == 3
        assert stats.torn_lines == 1

    def test_corrupt_middle_line_is_an_error(self, full_journal_lines, tmp_path):
        path = str(tmp_path / "corrupt.jsonl")
        with open(path, "wb") as handle:
            handle.writelines(full_journal_lines[:3])
            handle.write(b"not json\n")
            handle.writelines(full_journal_lines[3:])
        with pytest.raises(JournalError, match="corrupt"):
            recover_journal(path)

    def test_wrong_campaign_is_rejected(self, full_journal_lines, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "wb") as handle:
            handle.writelines(full_journal_lines)
        other = CampaignConfig(seed=8, injections=12, benchmarks=("towers",))
        with pytest.raises(JournalError, match="different campaign"):
            TrialJournal.resume(path, other)

    def test_resume_truncates_torn_tail(self, full_journal_lines, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with open(path, "wb") as handle:
            handle.writelines(full_journal_lines[:6])
            handle.write(full_journal_lines[6][:-5])
        journal, stats = TrialJournal.resume(path, CONFIG)
        journal.close()
        assert stats.torn_lines == 1
        assert stats.completed == 5
        # the torn bytes are gone: recovery is now clean
        assert recover_journal(path).torn_lines == 0

    def test_events_from_journal_adapter(self, full_journal_lines):
        entries = [json.loads(line) for line in full_journal_lines]
        events = events_from_journal(entries)
        assert len(events) == N  # header skipped
        assert events[0]["event"] == "trial"
        assert events[0]["trial"] == 0
        assert events[0]["benchmark"] == "towers"


class TestResume:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        kill_index=st.integers(min_value=0, max_value=N - 1),
        n_shards=st.sampled_from([1, 2, 4, 7]),
        torn_bytes=st.integers(min_value=0, max_value=40),
    )
    def test_resume_after_crash_matches_serial(
        self, kill_index, n_shards, torn_bytes,
        full_journal_lines, serial_fp, tmp_path,
    ):
        """Property: kill at any trial, optionally tearing the final
        line, resume under any shard count - fingerprint unchanged."""
        path = str(
            tmp_path / f"crash-{kill_index}-{n_shards}-{torn_bytes}.jsonl"
        )
        with open(path, "wb") as handle:
            # header + the trials completed before the "crash"
            handle.writelines(full_journal_lines[: 1 + kill_index])
            if torn_bytes:
                # the in-flight trial's partial write
                handle.write(full_journal_lines[1 + kill_index][:torn_bytes])
        report = run_campaign(CONFIG, resume=path, shards=n_shards)
        assert report.fingerprint() == serial_fp
        assert report.count == N
        expected_resumed = kill_index - (
            1 if torn_bytes >= len(full_journal_lines[1 + kill_index]) else 0
        )
        assert report.resume_info["resumed_trials"] in (
            kill_index, max(0, expected_resumed)
        )
        # and the journal is now complete: resuming again re-executes nothing
        again = run_campaign(CONFIG, resume=path)
        assert again.fingerprint() == serial_fp
        assert again.resume_info["executed_trials"] == 0

    def test_journalled_run_is_fully_recoverable(self, tmp_path, serial_fp):
        path = str(tmp_path / "j.jsonl")
        report = run_campaign(CONFIG, journal=path)
        assert report.fingerprint() == serial_fp
        assert recover_journal(path).completed == N

    def test_metrics_registry_counters(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        run_campaign(CONFIG, journal=path)
        registry = MetricsRegistry()
        report = run_campaign(CONFIG, resume=path, registry=registry)
        assert registry.get("campaign.trials").value == N
        assert registry.get("campaign.trials_resumed").value == N
        assert report.resume_info["executed_trials"] == 0
        assert registry.get("campaign.journal_syncs").value >= 1


def _plan():
    return shard_schedule(CONFIG, 1)


class TestSupervision:
    def test_retry_then_success(self):
        plan = _plan()
        calls = {}

        def flaky(trial, timeout_s):
            calls[trial.index] = calls.get(trial.index, 0) + 1
            if trial.index == 2 and calls[trial.index] < 3:
                raise RuntimeError("transient")
            return injection_record_for(trial)

        slept = []
        supervisor = TrialSupervisor(
            policy=RetryPolicy(max_attempts=3, seed=1),
            sleep=slept.append, execute=flaky,
        )
        out = []
        stats = supervisor.run(
            plan.trials[:4], lambda i, r, a: out.append((i, a))
        )
        assert stats.retries == 2
        assert stats.infra_errors == 0
        assert [i for i, _ in out] == [0, 1, 2, 3]
        assert dict(out)[2] == 3  # third attempt succeeded
        assert len(slept) == 2

    def test_quarantine_after_max_attempts(self):
        plan = _plan()

        def broken(trial, timeout_s):
            if trial.index == 1:
                raise RuntimeError("permanent")
            return injection_record_for(trial)

        supervisor = TrialSupervisor(
            policy=RetryPolicy(max_attempts=3, seed=1),
            sleep=lambda s: None, execute=broken,
        )
        out = []
        stats = supervisor.run(
            plan.trials[:3], lambda i, r, a: out.append((i, r))
        )
        assert stats.infra_errors == 1
        assert 1 in stats.quarantined
        record = dict(out)[1]
        assert record["outcome"] == Outcome.INFRA_ERROR.value
        assert record["halt"] == "INFRA_ERROR"
        # quarantine preserves delivery order
        assert [i for i, _ in out] == [0, 1, 2]

    def test_timeout_is_counted_and_quarantined(self):
        plan = _plan()

        def too_slow(trial, timeout_s):
            raise TrialTimeoutError("past deadline")

        supervisor = TrialSupervisor(
            policy=RetryPolicy(max_attempts=2, seed=1),
            sleep=lambda s: None, execute=too_slow,
        )
        stats = supervisor.run(plan.trials[:1], lambda i, r, a: None)
        assert stats.timeouts == 2  # both attempts timed out
        assert stats.infra_errors == 1

    def test_zero_timeout_quarantines_via_real_deadline(self):
        plan = _plan()
        supervisor = TrialSupervisor(
            timeout_s=0.0,
            policy=RetryPolicy(max_attempts=2, seed=1),
            sleep=lambda s: None,
        )
        out = []
        stats = supervisor.run(
            plan.trials[:1], lambda i, r, a: out.append(r)
        )
        assert stats.timeouts == 2
        assert out[0]["outcome"] == Outcome.INFRA_ERROR.value

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, factor=2.0,
            max_delay_s=0.5, jitter=0.5, seed=9,
        )
        delays = [policy.delay(3, attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [policy.delay(3, a) for a in (1, 2, 3, 4)]
        assert delays != [
            RetryPolicy(max_attempts=5, seed=10).delay(3, a)
            for a in (1, 2, 3, 4)
        ]
        for delay in delays:
            assert delay <= 0.5 * 1.5  # ceiling * max jitter
        assert RetryPolicy(max_attempts=1).delay(0, 1) >= 0.0
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_retry_events_are_emitted(self):
        plan = _plan()
        buffer = io.StringIO()

        def broken(trial, timeout_s):
            raise RuntimeError("nope")

        supervisor = TrialSupervisor(
            policy=RetryPolicy(max_attempts=2, seed=1),
            sleep=lambda s: None, execute=broken,
            event_writer=JsonlEventWriter(buffer),
        )
        supervisor.run(plan.trials[:1], lambda i, r, a: None)
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 1
        assert retries[0]["trial"] == 0
        assert retries[0]["attempt"] == 1

    def test_execute_trial_matches_serial_record(self, serial_records):
        plan = _plan()
        assert execute_trial(plan.trials[0], None) == serial_records[0]


def injection_record_for(trial):
    """A real record for *trial* (used by injected fake executors)."""
    return execute_trial(trial, None)


class TestPoolPath:
    def test_supervised_pool_matches_serial(self, serial_fp, tmp_path):
        path = str(tmp_path / "j.jsonl")
        registry = MetricsRegistry()
        report = run_campaign(
            CONFIG, workers=2, journal=path, registry=registry
        )
        assert report.fingerprint() == serial_fp
        assert recover_journal(path).completed == N
        assert registry.get("campaign.pool_restarts").value == 0


class TestInterruption:
    def test_ctrl_c_flushes_journal_and_is_resumable(
        self, tmp_path, serial_fp
    ):
        path = str(tmp_path / "j.jsonl")

        def chaos(done, pids):
            if done == 5:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as excinfo:
            run_distributed_campaign(CONFIG, journal=path, chaos_hook=chaos)
        exc = excinfo.value
        assert isinstance(exc, KeyboardInterrupt)
        assert exc.completed == 5
        assert exc.total == N
        assert exc.journal == path
        assert "--resume" in exc.describe()
        # every completed trial survived the interrupt
        assert recover_journal(path).completed == 5
        resumed = run_campaign(CONFIG, resume=path)
        assert resumed.fingerprint() == serial_fp

    def test_cli_interrupt_prints_resume_hint(self, tmp_path, capsys, monkeypatch):
        from repro.faults import campaign as campaign_module

        def interrupted(config, **kwargs):
            raise CampaignInterrupted(
                completed=3, total=12, journal="/tmp/j.jsonl"
            )

        monkeypatch.setattr(campaign_module, "run_campaign", interrupted)
        rc = campaign_module.main(
            ["--injections", "12", "--journal", "/tmp/j.jsonl"]
        )
        assert rc == 130
        out = capsys.readouterr().out
        assert "--resume /tmp/j.jsonl" in out
        assert "Traceback" not in out


class TestCliValidation:
    @pytest.mark.parametrize("flag", ["--workers", "--injections", "--retries"])
    @pytest.mark.parametrize("value", ["0", "-3", "x"])
    def test_non_positive_values_rejected(self, flag, value, capsys):
        from repro.faults.campaign import main

        with pytest.raises(SystemExit) as excinfo:
            main([flag, value])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_shard_index_range_checked(self, capsys):
        from repro.faults.campaign import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--shards", "2", "--shard-index", "2"])
        assert excinfo.value.code == 2

    def test_timeout_default_documented(self, capsys):
        from repro.faults.campaign import DEFAULT_TRIAL_TIMEOUT_S, main

        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        assert "--timeout-s" in help_text
        assert f"default {DEFAULT_TRIAL_TIMEOUT_S:.0f}" in help_text
