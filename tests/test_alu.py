"""ALU semantics tests against Python big-int references."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import MASK32, to_signed, to_unsigned
from repro.cpu.alu import Alu
from repro.isa.opcodes import Opcode

alu = Alu()
u32 = st.integers(0, MASK32)
shift = st.integers(0, 31)


class TestAdd:
    def test_simple(self):
        assert alu.execute(Opcode.ADD, 2, 3).value == 5

    def test_wraps(self):
        assert alu.execute(Opcode.ADD, MASK32, 1).value == 0

    def test_carry_in_ignored_by_add(self):
        assert alu.execute(Opcode.ADD, 1, 1, carry_in=True).value == 2

    def test_addc_uses_carry(self):
        assert alu.execute(Opcode.ADDC, 1, 1, carry_in=True).value == 3

    @given(u32, u32)
    def test_add_matches_reference(self, a, b):
        assert alu.execute(Opcode.ADD, a, b).value == (a + b) & MASK32


class TestSub:
    def test_simple(self):
        assert alu.execute(Opcode.SUB, 5, 3).value == 2

    def test_reversed(self):
        assert alu.execute(Opcode.SUBR, 3, 5).value == 2

    def test_subc_uses_borrow(self):
        assert alu.execute(Opcode.SUBC, 5, 3, carry_in=True).value == 1

    def test_subcr_uses_borrow(self):
        assert alu.execute(Opcode.SUBCR, 3, 5, carry_in=True).value == 1

    def test_zero_flag(self):
        result = alu.execute(Opcode.SUB, 7, 7)
        assert result.z and not result.n

    def test_borrow_flag_signals_unsigned_less(self):
        assert alu.execute(Opcode.SUB, 3, 5).c
        assert not alu.execute(Opcode.SUB, 5, 3).c

    @given(u32, u32)
    def test_sub_matches_reference(self, a, b):
        assert alu.execute(Opcode.SUB, a, b).value == (a - b) & MASK32

    @given(u32, u32)
    def test_subr_is_swapped_sub(self, a, b):
        assert alu.execute(Opcode.SUBR, a, b).value == alu.execute(Opcode.SUB, b, a).value


class TestLogical:
    @given(u32, u32)
    def test_and(self, a, b):
        assert alu.execute(Opcode.AND, a, b).value == a & b

    @given(u32, u32)
    def test_or(self, a, b):
        assert alu.execute(Opcode.OR, a, b).value == a | b

    @given(u32, u32)
    def test_xor(self, a, b):
        assert alu.execute(Opcode.XOR, a, b).value == a ^ b

    def test_logical_clears_carry_overflow(self):
        result = alu.execute(Opcode.AND, MASK32, MASK32)
        assert not result.c and not result.v
        assert result.n  # top bit set


class TestShifts:
    @given(u32, shift)
    def test_sll(self, a, n):
        assert alu.execute(Opcode.SLL, a, n).value == (a << n) & MASK32

    @given(u32, shift)
    def test_srl(self, a, n):
        assert alu.execute(Opcode.SRL, a, n).value == a >> n

    @given(u32, shift)
    def test_sra(self, a, n):
        expected = to_unsigned(to_signed(a) >> n)
        assert alu.execute(Opcode.SRA, a, n).value == expected

    def test_sra_keeps_sign(self):
        assert alu.execute(Opcode.SRA, 0x80000000, 4).value == 0xF8000000

    def test_shift_amount_masked_to_5_bits(self):
        assert alu.execute(Opcode.SLL, 1, 33).value == 2


class TestFlags:
    @given(st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.XOR]), u32, u32)
    def test_nz_always_from_result(self, op, a, b):
        result = alu.execute(op, a, b)
        assert result.z == (result.value == 0)
        assert result.n == bool(result.value >> 31)

    def test_signed_overflow_add(self):
        assert alu.execute(Opcode.ADD, 0x7FFFFFFF, 1).v

    def test_signed_overflow_sub(self):
        assert alu.execute(Opcode.SUB, 0x80000000, 1).v


class TestErrors:
    def test_non_alu_opcode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            alu.execute(Opcode.LDL, 1, 2)
