"""Tests for C syntax sugar: compound assignment, ++/--, do-while."""

import pytest

from repro.cc import compile_for_risc
from repro.errors import ParseError
from repro.hll import run_program


def both(source: str) -> int:
    """Interpreter result, asserted equal to the compiled RISC I result."""
    expected = run_program(source).value
    value, __ = compile_for_risc(source).run()
    assert value == expected
    return expected


class TestCompoundAssignment:
    def test_all_operators(self):
        source = """
        int main() {
            int x = 100;
            x += 5;  x -= 3;  x *= 2;  x /= 4;  x %= 17;
            x <<= 2; x >>= 1; x &= 63; x |= 128; x ^= 15;
            return x;
        }
        """
        expected = 100
        expected += 5; expected -= 3; expected *= 2; expected //= 4
        expected %= 17
        expected <<= 2; expected >>= 1; expected &= 63
        expected |= 128; expected ^= 15
        assert both(source) == expected

    def test_compound_on_array_element(self):
        assert both("int a[4]; int main() { a[2] = 5; a[2] += 7; return a[2]; }") == 12

    def test_compound_on_deref(self):
        assert both(
            "int main() { int x = 9; int *p = &x; *p += 1; return x; }"
        ) == 10


class TestIncrementDecrement:
    def test_postfix_statement(self):
        assert both("int main() { int i = 5; i++; i++; i--; return i; }") == 6

    def test_prefix_statement(self):
        assert both("int main() { int i = 5; ++i; --i; ++i; return i; }") == 6

    def test_in_for_step(self):
        assert both(
            "int main() { int s = 0; int i; for (i = 0; i < 5; i++) s += i; return s; }"
        ) == 10

    def test_on_array_element(self):
        assert both("int a[2]; int main() { a[1]++; a[1]++; return a[1]; }") == 2


class TestDoWhile:
    def test_executes_at_least_once(self):
        assert both(
            "int main() { int n = 0; do { n++; } while (0); return n; }"
        ) == 1

    def test_loops_until_false(self):
        assert both(
            "int main() { int i = 0; int s = 0;"
            " do { s += i; i++; } while (i < 5); return s; }"
        ) == 10

    def test_break_and_continue(self):
        source = """
        int main() {
            int i = 0; int s = 0;
            do {
                i++;
                if (i == 3) continue;
                if (i == 6) break;
                s += i;
            } while (i < 100);
            return s;
        }
        """
        assert both(source) == 1 + 2 + 4 + 5

    def test_missing_while_rejected(self):
        with pytest.raises(ParseError):
            run_program("int main() { do { } return 0; }")

    def test_nested_do_while(self):
        source = """
        int main() {
            int i = 0; int total = 0;
            do {
                int j = 0;
                do { total++; j++; } while (j < 3);
                i++;
            } while (i < 2);
            return total;
        }
        """
        assert both(source) == 6


class TestInteraction:
    def test_sugar_in_benchmark_style_kernel(self):
        source = """
        int data[16];
        int main() {
            int i;
            int sum = 0;
            for (i = 0; i < 16; i++) data[i] = i * i;
            i = 0;
            do { sum += data[i]; i += 2; } while (i < 16);
            return sum;
        }
        """
        assert both(source) == sum(i * i for i in range(0, 16, 2))
