"""Unit tests for IR node rendering and def/use bookkeeping."""

from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    FrameSlot,
    IrFunction,
    IrProgram,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    SymRef,
    Temp,
)


class TestDefsUses:
    def test_move(self):
        ins = Move(Temp(1), Temp(2))
        assert ins.defs() == [Temp(1)]
        assert ins.uses() == [Temp(2)]

    def test_move_const_has_no_uses(self):
        assert Move(Temp(1), Const(5)).uses() == []

    def test_bin(self):
        ins = Bin("+", Temp(3), Temp(1), Temp(2))
        assert ins.defs() == [Temp(3)]
        assert set(ins.uses()) == {Temp(1), Temp(2)}

    def test_store_uses_both(self):
        ins = Store(addr=Temp(1), src=Temp(2))
        assert ins.defs() == []
        assert set(ins.uses()) == {Temp(1), Temp(2)}

    def test_symref_is_not_a_temp_use(self):
        ins = Load(Temp(1), SymRef(9, "g", "global"))
        assert ins.uses() == []

    def test_call_uses_temp_args_only(self):
        ins = Call(dst=Temp(5), func="f", args=[Temp(1), Const(2)])
        assert ins.uses() == [Temp(1)]
        assert ins.defs() == [Temp(5)]

    def test_call_without_dst(self):
        assert Call(dst=None, func="f").defs() == []

    def test_ret_none(self):
        assert Ret(None).uses() == []

    def test_label_and_jump_neutral(self):
        assert Label("x").defs() == [] and Label("x").uses() == []
        assert Jump("x").defs() == [] and Jump("x").uses() == []

    def test_cjump_uses(self):
        ins = CJump("<", Temp(1), Const(0), "out")
        assert ins.uses() == [Temp(1)]


class TestRendering:
    def test_instruction_strings(self):
        assert str(Move(Temp(1), Const(5))) == "  t1 = #5"
        assert "t2 = t0 + t1" in str(Bin("+", Temp(2), Temp(0), Temp(1)))
        assert "M4[" in str(Load(Temp(1), Temp(0), size=4))
        assert "M1[" in str(Store(addr=Temp(0), src=Temp(1), size=1))
        assert "goto out" in str(Jump("out"))
        assert "if t0 < #3 goto L" in str(CJump("<", Temp(0), Const(3), "L"))
        assert "f(t1)" in str(Call(dst=Temp(0), func="f", args=[Temp(1)]))
        assert str(Label("spot")) == "spot:"
        assert "&g" in str(SymRef(1, "g", "global"))

    def test_function_render(self):
        func = IrFunction(name="f", params=[Temp(0)], body=[
            Move(Temp(1), Temp(0)),
            Ret(Temp(1)),
        ])
        text = func.render()
        assert text.startswith("func f(t0):")
        assert "t1 = t0" in text

    def test_program_render(self):
        program = IrProgram(functions={"f": IrFunction(name="f")})
        assert "func f():" in program.render()

    def test_boolcmp_render(self):
        assert "t1 = t0 == #0" in str(BoolCmp("==", Temp(1), Temp(0), Const(0)))


class TestFrameSlots:
    def test_slot_fields(self):
        slot = FrameSlot(uid=7, name="arr", size=16)
        assert slot.offset == 0
        slot.offset = 8
        assert slot.offset == 8
