"""Tests for the RISC I ISA definition: opcodes, encode/decode, conditions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import (
    ALL_SPECS,
    INSTRUCTION_COUNT,
    Category,
    Cond,
    Format,
    Instruction,
    Opcode,
    cond_holds,
    decode,
    encode,
    spec_for,
)
from repro.isa.conditions import NEGATION, negate

ALL_OPCODES = sorted(ALL_SPECS, key=int)
SHORT_OPCODES = [op for op in ALL_OPCODES if ALL_SPECS[op].fmt is Format.SHORT]
LONG_OPCODES = [op for op in ALL_OPCODES if ALL_SPECS[op].fmt is Format.LONG]


class TestInstructionTable:
    def test_exactly_31_instructions(self):
        assert INSTRUCTION_COUNT == 31

    def test_category_sizes_match_paper(self):
        by_cat = {}
        for spec in ALL_SPECS.values():
            by_cat.setdefault(spec.category, []).append(spec)
        assert len(by_cat[Category.ALU]) == 12
        assert len(by_cat[Category.LOAD]) == 5
        assert len(by_cat[Category.STORE]) == 3
        assert len(by_cat[Category.JUMP]) == 7
        assert len(by_cat[Category.MISC]) == 4

    def test_all_instructions_are_32_bits(self):
        for op in ALL_OPCODES:
            word = encode(Instruction(op, dest=1, rs1=2, s2=3))
            assert 0 <= word < (1 << 32)

    def test_memory_instructions_take_two_cycles(self):
        for op, spec in ALL_SPECS.items():
            if spec.category in (Category.LOAD, Category.STORE):
                assert spec.cycles == 2, op
            else:
                assert spec.cycles == 1, op

    def test_only_loads_stores_touch_memory(self):
        memory_ops = [
            op for op, spec in ALL_SPECS.items()
            if spec.category in (Category.LOAD, Category.STORE)
        ]
        assert len(memory_ops) == 8

    def test_spec_lookup(self):
        assert spec_for(Opcode.ADD).mnemonic == "ADD"


class TestEncodeDecode:
    @pytest.mark.parametrize("op", SHORT_OPCODES)
    def test_short_roundtrip_register_form(self, op):
        inst = Instruction(op, dest=5, rs1=7, s2=9, imm=False, scc=True)
        assert decode(encode(inst)) == inst

    @pytest.mark.parametrize("op", SHORT_OPCODES)
    def test_short_roundtrip_immediate_form(self, op):
        inst = Instruction(op, dest=3, rs1=4, s2=-4096, imm=True)
        assert decode(encode(inst)) == inst

    @pytest.mark.parametrize("op", LONG_OPCODES)
    def test_long_roundtrip(self, op):
        inst = Instruction(op, dest=2, imm19=-262144)
        assert decode(encode(inst)) == inst

    def test_immediate_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, dest=1, rs1=1, s2=4096, imm=True))

    def test_imm19_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.JMPR, dest=1, imm19=1 << 18))

    def test_register_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, dest=32, rs1=0, s2=0))
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, dest=0, rs1=40, s2=0))

    def test_invalid_opcode_word_rejected(self):
        with pytest.raises(DecodingError):
            decode(0)  # opcode 0 is unassigned

    def test_oversized_word_rejected(self):
        with pytest.raises(DecodingError):
            decode(1 << 32)

    @given(
        op=st.sampled_from(SHORT_OPCODES),
        dest=st.integers(0, 31),
        rs1=st.integers(0, 31),
        rs2=st.integers(0, 31),
        scc=st.booleans(),
    )
    def test_roundtrip_property_register(self, op, dest, rs1, rs2, scc):
        inst = Instruction(op, dest=dest, rs1=rs1, s2=rs2, imm=False, scc=scc)
        assert decode(encode(inst)) == inst

    @given(
        op=st.sampled_from(SHORT_OPCODES),
        dest=st.integers(0, 31),
        rs1=st.integers(0, 31),
        imm=st.integers(-4096, 4095),
    )
    def test_roundtrip_property_immediate(self, op, dest, rs1, imm):
        inst = Instruction(op, dest=dest, rs1=rs1, s2=imm, imm=True)
        assert decode(encode(inst)) == inst

    @given(
        op=st.sampled_from(LONG_OPCODES),
        dest=st.integers(0, 31),
        imm19=st.integers(-(1 << 18), (1 << 18) - 1),
    )
    def test_roundtrip_property_long(self, op, dest, imm19):
        inst = Instruction(op, dest=dest, imm19=imm19)
        assert decode(encode(inst)) == inst


class TestConditions:
    def test_always_and_never(self):
        assert cond_holds(Cond.ALW, False, False, False, False)
        assert not cond_holds(Cond.NEVER, True, True, True, True)

    def test_eq_uses_zero_flag(self):
        assert cond_holds(Cond.EQ, False, True, False, False)
        assert not cond_holds(Cond.EQ, False, False, False, False)

    def test_signed_less_uses_n_xor_v(self):
        assert cond_holds(Cond.LT, True, False, False, False)
        assert cond_holds(Cond.LT, False, False, True, False)
        assert not cond_holds(Cond.LT, True, False, True, False)

    def test_unsigned_less_uses_borrow(self):
        assert cond_holds(Cond.LTU, False, False, False, True)
        assert not cond_holds(Cond.LTU, False, False, False, False)

    @given(
        cond=st.sampled_from(list(Cond)),
        n=st.booleans(),
        z=st.booleans(),
        v=st.booleans(),
        c=st.booleans(),
    )
    def test_negation_is_exact_complement(self, cond, n, z, v, c):
        assert cond_holds(cond, n, z, v, c) != cond_holds(negate(cond), n, z, v, c)

    def test_negation_is_involution(self):
        for cond in Cond:
            assert negate(negate(cond)) is cond

    def test_negation_table_is_total(self):
        assert set(NEGATION) == set(Cond)


class TestInstructionHelpers:
    def test_operand_registers_alu(self):
        inst = Instruction(Opcode.ADD, dest=1, rs1=2, s2=3)
        assert inst.operand_registers() == [2, 3]

    def test_operand_registers_immediate(self):
        inst = Instruction(Opcode.ADD, dest=1, rs1=2, s2=5, imm=True)
        assert inst.operand_registers() == [2]

    def test_store_reads_dest_as_data(self):
        inst = Instruction(Opcode.STL, dest=7, rs1=2, s2=0, imm=True)
        assert 7 in inst.operand_registers()

    def test_written_register(self):
        assert Instruction(Opcode.ADD, dest=4, rs1=1, s2=1).written_register() == 4
        assert Instruction(Opcode.STL, dest=4, rs1=1, s2=1).written_register() is None
        assert Instruction(Opcode.JMP, dest=int(Cond.EQ), rs1=1).written_register() is None

    def test_cond_property(self):
        inst = Instruction(Opcode.JMPR, dest=int(Cond.NE), imm19=8)
        assert inst.cond is Cond.NE

    def test_render_smoke(self):
        assert "add" in Instruction(Opcode.ADD, dest=1, rs1=2, s2=3).render()
        assert "#5" in Instruction(Opcode.ADD, dest=1, rs1=2, s2=5, imm=True).render()
