"""Edge-case tests for the assembler and disassembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import RiscMachine, assemble
from repro.asm.assembler import Assembler
from repro.asm.disassembler import disassemble, render
from repro.errors import AssemblerError
from repro.isa import Instruction, Opcode, decode, encode
from repro.isa.opcodes import ALL_SPECS, Format


class TestImmediateBoundaries:
    def test_imm13_extremes(self):
        for value in (-4096, 4095):
            word = assemble(f"add r1, r0, #{value}").to_words()[0]
            assert decode(word).s2 == value

    def test_imm13_just_out_of_range(self):
        for value in (-4097, 4096):
            with pytest.raises(AssemblerError):
                assemble(f"add r1, r0, #{value}")

    def test_li_boundary_values(self):
        for value in (-4096, 4095):
            assert len(assemble(f"li r1, {value}").to_words()) == 1
        for value in (-4097, 4096, 2**31 - 1, -(2**31)):
            assert len(assemble(f"li r1, {value}").to_words()) == 2

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_li_loads_any_32bit_value(self, value):
        source = f"main:\n li r26, {value}\n ret\n nop"
        program = assemble(source)
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.run(program.entry)
        assert machine.result == value & 0xFFFFFFFF

    def test_ldhi_wraps_high_bits(self):
        word = assemble("ldhi r1, 0x7FFFF").to_words()[0]
        assert decode(word).imm19 == -1  # 19-bit all-ones pattern


class TestLayoutEdges:
    def test_consecutive_labels(self):
        program = assemble("a:\nb:\nc: nop")
        assert program.symbols["a"] == program.symbols["b"] == program.symbols["c"]

    def test_label_then_org(self):
        program = assemble("start:\n .org 0x20\nlater: nop")
        assert program.symbols["start"] == 0
        assert program.symbols["later"] == 0x20

    def test_empty_source(self):
        program = assemble("")
        assert program.size == 0
        assert program.to_words() == []

    def test_comment_only_source(self):
        assert assemble("; nothing\n// here either").size == 0

    def test_base_offsets_symbols(self):
        program = assemble("main: nop", base=0x100)
        assert program.symbols["main"] == 0x100
        assert program.entry == 0x100

    def test_equate_chains(self):
        program = assemble("a = 4\nb = a + 4\n.org b\nx: nop")
        assert program.symbols["x"] == 8

    def test_expression_with_subtraction(self):
        word = assemble("k = 10\nadd r1, r0, #k - 3 + 1").to_words()[0]
        assert decode(word).s2 == 8

    def test_negative_char_escape(self):
        word = assemble("add r1, r0, #'\\0'").to_words()[0]
        assert decode(word).s2 == 0


class TestAssemblerReuse:
    def test_assembler_instance_reusable(self):
        assembler = Assembler()
        first = assembler.assemble("main: nop")
        second = assembler.assemble("main: nop\n nop")
        assert first.size == 4
        assert second.size == 8


class TestDisassemblerCoverage:
    @pytest.mark.parametrize("opcode", sorted(ALL_SPECS, key=int),
                             ids=lambda op: op.name)
    def test_every_opcode_renders(self, opcode):
        spec = ALL_SPECS[opcode]
        if spec.fmt is Format.LONG:
            inst = Instruction(opcode, dest=3, imm19=16)
        else:
            inst = Instruction(opcode, dest=3, rs1=4, s2=5)
        text = render(inst, address=0x100)
        assert text  # non-empty, no crash

    def test_invalid_word_formats_as_data(self):
        from repro.asm import disassemble_program

        lines = disassemble_program([0x00000000])
        assert ".word" in lines[0]

    @given(
        opcode=st.sampled_from([op for op in ALL_SPECS
                                if ALL_SPECS[op].fmt is Format.SHORT]),
        dest=st.integers(0, 31),
        cond=st.integers(1, 15),
        rs1=st.integers(0, 31),
        imm=st.integers(-4096, 4095),
    )
    def test_disassemble_reassemble_roundtrip(self, opcode, dest, cond, rs1, imm):
        from repro.isa.opcodes import Category

        from repro.isa.opcodes import Category

        spec = ALL_SPECS[opcode]
        # Round-tripping is guaranteed for *canonical* encodings: fields an
        # instruction ignores (RET's dest, GETPSW's operands) are zeroed.
        if spec.uses_cond:
            dest_field = cond  # only 4 bits of dest are meaningful
        elif spec.writes_dest or spec.category is Category.STORE:
            dest_field = dest
        else:
            dest_field = 0
        inst = Instruction(
            opcode,
            dest=dest_field,
            rs1=rs1 if spec.reads_rs1 else 0,
            s2=imm if spec.reads_rs2 else 0,
            imm=spec.reads_rs2,
            scc=spec.category is Category.ALU,
        )
        word = encode(inst)
        text = disassemble(word, address=0)
        rebuilt = assemble(text).to_words()[0]
        assert rebuilt == word
