"""Fault injector, decode-cache isolation, checkpoint/rollback, campaigns."""

import pytest

from repro import RiscMachine, assemble
from repro.cpu.machine import HaltReason
from repro.faults import (
    CampaignConfig,
    FaultInjector,
    FaultKind,
    FaultSites,
    FaultSpec,
    FaultTarget,
    FaultTrigger,
    random_spec,
    run_campaign,
)
from repro.isa.decode import CachingDecoder
from repro.isa.registers import physical_index


def make_machine(source: str, **kwargs) -> RiscMachine:
    program = assemble(source)
    machine = RiscMachine(**kwargs)
    program.load_into(machine.memory)
    machine.reset(program.entry)
    return machine


def run_to_halt(machine: RiscMachine, max_steps: int = 100_000) -> None:
    steps = 0
    while machine.halted is None and steps < max_steps:
        machine.step()
        steps += 1
    if machine.halted is None:
        machine.halted = HaltReason.STEP_LIMIT


MEM_ROUNDTRIP = """
main:
    li   r16, 1234
    stl  r16, r0, 0x400
    ldl  r26, r0, 0x400
    ret
    nop
"""


class TestFaultModels:
    def test_trigger_requires_exactly_one_form(self):
        with pytest.raises(ValueError):
            FaultTrigger()
        with pytest.raises(ValueError):
            FaultTrigger(at_cycle=5, at_pc=0x10)
        with pytest.raises(ValueError):
            FaultTrigger(at_pc=0x10, pc_hits=0)

    def test_spec_validates_bits_and_alignment(self):
        trigger = FaultTrigger(at_cycle=1)
        with pytest.raises(ValueError):
            FaultSpec(FaultTarget.REGISTER, FaultKind.BIT_FLIP, trigger, bits=())
        with pytest.raises(ValueError):
            FaultSpec(FaultTarget.REGISTER, FaultKind.BIT_FLIP, trigger, bits=(32,))
        with pytest.raises(ValueError):
            FaultSpec(FaultTarget.PSW, FaultKind.BIT_FLIP, trigger, bits=(11,))
        with pytest.raises(ValueError):
            FaultSpec(FaultTarget.MEMORY, FaultKind.BIT_FLIP, trigger, location=0x402)

    def test_mask_combines_bits(self):
        spec = FaultSpec(
            FaultTarget.REGISTER,
            FaultKind.BIT_FLIP,
            FaultTrigger(at_cycle=1),
            bits=(0, 4, 31),
        )
        assert spec.mask == (1 << 0) | (1 << 4) | (1 << 31)

    def test_random_spec_is_deterministic(self):
        import random

        sites = FaultSites(
            register_count=138,
            memory_top=1 << 16,
            pcs=((0, 3), (4, 2), (8, 1)),
            cycle_limit=100,
        )
        a = [random_spec(random.Random(42), sites) for __ in range(1)]
        stream1 = [random_spec(random.Random(7), sites) for __ in range(50)]
        stream2 = [random_spec(random.Random(7), sites) for __ in range(50)]
        assert stream1 == stream2
        assert a  # smoke: a single draw is a valid FaultSpec


class TestInjector:
    def test_memory_bit_flip_changes_loaded_value(self):
        machine = make_machine(MEM_ROUNDTRIP)
        spec = FaultSpec(
            FaultTarget.MEMORY,
            FaultKind.BIT_FLIP,
            FaultTrigger(at_cycle=3),  # after the store, before the load
            location=0x400,
            bits=(0,),
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        run_to_halt(machine)
        injector.detach()
        assert machine.result == 1235  # 1234 with bit 0 flipped
        assert len(injector.events) == 1
        assert injector.events[0].original == 1234
        assert injector.events[0].mutated == 1235

    def test_register_bit_flip(self):
        machine = make_machine(
            """
            main:
                li  r16, 5
                add r26, r16, #0
                ret
                nop
            """
        )
        phys = physical_index(0, 16, machine.num_windows)
        spec = FaultSpec(
            FaultTarget.REGISTER,
            FaultKind.BIT_FLIP,
            FaultTrigger(at_cycle=1),  # between the li and the add
            location=phys,
            bits=(1,),
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        run_to_halt(machine)
        assert machine.result == 5 ^ 2

    def test_memory_stuck_at_one_survives_overwrite(self):
        machine = make_machine(
            """
            main:
                li   r16, 0
                stl  r16, r0, 0x400
                ldl  r26, r0, 0x400
                ret
                nop
            """
        )
        spec = FaultSpec(
            FaultTarget.MEMORY,
            FaultKind.STUCK_AT_ONE,
            FaultTrigger(at_cycle=1),
            location=0x400,
            bits=(0,),
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        run_to_halt(machine)
        # The program stored 0, but the stuck bit is re-asserted at every
        # step boundary, so the load observes 1.
        assert machine.result == 1

    def test_register_stuck_at_zero_caught_by_watchdog(self):
        machine = make_machine(
            """
            main:
            loop:
                add r6, r6, #1
                cmp r6, #3
                blt loop
                nop
                mov r26, r6
                ret
                nop
            """
        )
        phys = physical_index(0, 6, machine.num_windows)
        spec = FaultSpec(
            FaultTarget.REGISTER,
            FaultKind.STUCK_AT_ZERO,
            FaultTrigger(at_cycle=1),
            location=phys,
            bits=(0, 1),
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        run_to_halt(machine, max_steps=5000)
        # The loop counter can never reach 3: the injected infinite loop
        # is caught by the step budget, never by the host.
        assert machine.halted is HaltReason.STEP_LIMIT

    def test_instruction_bit_flip_is_transient_and_bypasses_cache(self):
        source = "main:\n li r26, 1\n ret\n nop"
        machine = make_machine(source)
        entry = 0
        pristine = machine.memory.fetch_word(entry)
        spec = FaultSpec(
            FaultTarget.INSTRUCTION,
            FaultKind.BIT_FLIP,
            FaultTrigger(at_pc=entry, pc_hits=1),
            location=entry,
            bits=(0,),  # imm13 low bit: li r26, 1 becomes li r26, 0
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        run_to_halt(machine)
        assert machine.result == 0
        assert injector.events[0].original == pristine
        assert injector.events[0].mutated == pristine ^ 1
        # The corrupted word never entered the decode cache.
        assert machine.decoder.decode(pristine).s2 == 1
        # Memory itself was never touched (the corruption is on the
        # fetch path only).
        assert machine.memory.fetch_word(entry) == pristine

    def test_injection_is_deterministic(self):
        def faulted_run():
            machine = make_machine(MEM_ROUNDTRIP)
            spec = FaultSpec(
                FaultTarget.MEMORY,
                FaultKind.BIT_FLIP,
                FaultTrigger(at_cycle=3),
                location=0x400,
                bits=(7,),
            )
            injector = FaultInjector(machine, [spec])
            injector.attach()
            run_to_halt(machine)
            return machine.result, [
                (e.cycle, e.pc, e.original, e.mutated) for e in injector.events
            ]

        assert faulted_run() == faulted_run()

    def test_detach_removes_hooks(self):
        machine = make_machine(MEM_ROUNDTRIP)
        spec = FaultSpec(
            FaultTarget.INSTRUCTION,
            FaultKind.BIT_FLIP,
            FaultTrigger(at_pc=0, pc_hits=1),
        )
        injector = FaultInjector(machine, [spec])
        injector.attach()
        assert machine.observers.observer_count("pre_step") == 1
        assert machine.observers.observer_count("fetch_word") == 1
        injector.detach()
        assert machine.observers.observer_count("pre_step") == 0
        assert machine.observers.observer_count("fetch_word") == 0


class TestCachingDecoder:
    def test_machines_have_isolated_caches(self):
        m1 = make_machine(MEM_ROUNDTRIP)
        m2 = make_machine(MEM_ROUNDTRIP)
        run_to_halt(m1)
        assert m1.decoder is not m2.decoder
        assert m1.decoder.misses > 0
        assert m2.decoder.hits == 0 and m2.decoder.misses == 0

    def test_shared_decoder_amortises(self):
        shared = CachingDecoder()
        m1 = make_machine(MEM_ROUNDTRIP, decoder=shared)
        m2 = make_machine(MEM_ROUNDTRIP, decoder=shared)
        run_to_halt(m1)
        misses_after_first = shared.misses
        run_to_halt(m2)
        # The second machine decodes the identical program: all hits.
        assert shared.misses == misses_after_first
        assert m1.result == m2.result == 1234

    def test_uncached_decode_does_not_populate(self):
        decoder = CachingDecoder()
        word = assemble("main:\n nop").image[:4]
        word = int.from_bytes(word, "big")
        decoder.decode_uncached(word)
        assert decoder.cache_info()["entries"] == 0
        decoder.decode(word)
        assert decoder.cache_info()["entries"] == 1

    def test_bounded_cache_clears_wholesale(self):
        decoder = CachingDecoder(max_entries=2)
        nop = int.from_bytes(assemble("main:\n nop").image[:4], "big")
        # Three distinct valid words: vary the immediate of an add.
        for imm in (1, 2, 3):
            decoder.decode(nop | imm)
        assert decoder.evictions == 1
        assert decoder.cache_info()["entries"] <= 2


class TestCheckpointRollback:
    def checkpoint_roundtrip(self, *, deltas: bool):
        machine = make_machine(MEM_ROUNDTRIP)
        machine.step()  # execute the li
        cp = machine.checkpoint(track_memory_deltas=deltas)
        pc_at_cp = machine.pc
        run_to_halt(machine)
        first_result = machine.result
        assert machine.memory.load_word(0x400, count=False) == 1234
        machine.restore(cp)
        assert machine.pc == pc_at_cp
        assert machine.halted is None
        assert machine.stats.instructions == 1
        # The store was rolled back.
        assert machine.memory.load_word(0x400, count=False) == 0
        run_to_halt(machine)
        assert machine.result == first_result == 1234

    def test_full_image_roundtrip(self):
        self.checkpoint_roundtrip(deltas=False)

    def test_delta_journal_roundtrip(self):
        self.checkpoint_roundtrip(deltas=True)

    def test_delta_checkpoint_is_reusable(self):
        machine = make_machine(MEM_ROUNDTRIP)
        cp = machine.checkpoint(track_memory_deltas=True)
        for __ in range(3):
            run_to_halt(machine)
            assert machine.result == 1234
            machine.restore(cp)
            assert machine.halted is None
            assert machine.memory.load_word(0x400, count=False) == 0

    def test_restore_truncates_trap_log(self):
        machine = make_machine("main:\n ldl r26, r0, 0x401\n ret\n nop")
        cp = machine.checkpoint()
        run_to_halt(machine)
        assert len(machine.trap_log) == 1
        machine.restore(cp)
        assert machine.trap_log == []
        assert machine.last_trap is None


class TestCampaignSmoke:
    def test_small_campaign_is_deterministic_and_crash_free(self):
        config = CampaignConfig(seed=7, injections=6, benchmarks=("towers",))
        first = run_campaign(config)
        second = run_campaign(config)
        assert len(first.results) == 6
        assert first.summary()["crash"] == 0
        assert first.fingerprint() == second.fingerprint()
        table = first.rate_table()
        rendered = table.render()
        assert "fault campaign" in rendered
        assert "all" in rendered
