"""End-to-end tests for string-literal expressions (the rodata pool)."""

from repro.cc import compile_for_risc
from repro.hll import run_program


def both(source: str) -> tuple[int, str]:
    """(result, console) from the interpreter, asserted equal on RISC I."""
    interp = run_program(source)
    value, machine = compile_for_risc(source).run()
    assert value == interp.value
    assert machine.memory.console_output == interp.memory.console_output
    return interp.value, interp.memory.console_output


class TestStringExpressions:
    def test_string_as_argument(self):
        value, __ = both("""
        int first(char *s) { return s[0]; }
        int main() { return first("Zebra"); }
        """)
        assert value == ord("Z")

    def test_string_assigned_to_pointer(self):
        value, __ = both("""
        int main() {
            char *p = "abc";
            return p[0] + p[2];
        }
        """)
        assert value == ord("a") + ord("c")

    def test_string_indexed_directly(self):
        value, __ = both('int main() { return "hello"[1]; }')
        assert value == ord("e")

    def test_nul_terminator_present(self):
        value, __ = both("""
        int strlen_(char *s) { int n = 0; while (s[n] != 0) n++; return n; }
        int main() { return strlen_("four"); }
        """)
        assert value == 4

    def test_print_string_helper(self):
        __, console = both(r"""
        int print(char *s) {
            int i;
            for (i = 0; s[i] != 0; i++) putchar(s[i]);
            return i;
        }
        int main() {
            print("hi ");
            print("there");
            putchar('\n');
            return 0;
        }
        """)
        assert console == "hi there\n"

    def test_pointer_arithmetic_over_literal(self):
        value, __ = both("""
        int main() {
            char *p = "abcdef";
            p = p + 2;
            return *p;
        }
        """)
        assert value == ord("c")

    def test_two_distinct_literals(self):
        value, __ = both("""
        int pick(char *a, char *b, int which) {
            if (which) return a[0];
            return b[0];
        }
        int main() { return pick("A", "B", 1) * 256 + pick("A", "B", 0); }
        """)
        assert value == ord("A") * 256 + ord("B")
