"""Tests for the IR optimizer (copy propagation + dead-code elimination)."""

from repro.cc import compile_for_risc
from repro.cc.compiler import compile_to_ir
from repro.cc.ir import Bin, Call, Const, Load, Move, Ret, Store, Temp
from repro.cc.optimize import copy_propagate, eliminate_dead_code, optimize_function
from repro.hll import run_program


def ir_for(source, optimize=True):
    return compile_to_ir(source, optimize=optimize).functions["main"]


class TestCopyPropagation:
    def test_constant_copies_reach_uses(self):
        func = ir_for("int main() { int x = 7; int y = x; return y; }")
        rets = [ins for ins in func.body if isinstance(ins, Ret)]
        assert rets[0].value == Const(7)

    def test_propagation_stops_at_redefinition(self):
        source = """
        int main() {
            int x = 1;
            int y = x;
            x = 2;
            return y + x;
        }
        """
        expected = run_program(source).value
        value, __ = compile_for_risc(source).run()
        assert value == expected == 3

    def test_propagation_resets_at_labels(self):
        source = """
        int main() {
            int x = 1;
            int y = 0;
            int i;
            for (i = 0; i < 3; i = i + 1) { y = y + x; x = y; }
            return x;
        }
        """
        expected = run_program(source).value
        value, __ = compile_for_risc(source).run()
        assert value == expected

    def test_manual_block(self):
        t0, t1, t2 = Temp(0), Temp(1), Temp(2)
        func_body = [
            Move(t0, Const(5)),
            Move(t1, t0),
            Bin("+", t2, t1, t1),
            Ret(t2),
        ]
        from repro.cc.ir import IrFunction

        func = IrFunction(name="f", body=func_body, temp_count=3)
        assert copy_propagate(func)
        add = [ins for ins in func.body if isinstance(ins, Bin)][0]
        assert add.a == Const(5) and add.b == Const(5)


class TestDeadCodeElimination:
    def test_unused_move_removed(self):
        from repro.cc.ir import IrFunction

        func = IrFunction(name="f", body=[
            Move(Temp(0), Const(1)),  # dead
            Ret(Const(0)),
        ], temp_count=1)
        assert eliminate_dead_code(func)
        assert len(func.body) == 1

    def test_store_never_removed(self):
        from repro.cc.ir import IrFunction, SymRef

        func = IrFunction(name="f", body=[
            Store(addr=SymRef(1, "g", "global"), src=Const(1)),
            Ret(Const(0)),
        ], temp_count=0)
        assert not eliminate_dead_code(func)

    def test_call_never_removed(self):
        from repro.cc.ir import IrFunction

        func = IrFunction(name="f", body=[
            Call(dst=Temp(0), func="g", args=[]),  # result unused, call stays
            Ret(Const(0)),
        ], temp_count=1)
        assert not eliminate_dead_code(func)

    def test_chain_collapses_to_fixed_point(self):
        from repro.cc.ir import IrFunction

        func = IrFunction(name="f", body=[
            Move(Temp(0), Const(1)),
            Move(Temp(1), Temp(0)),
            Move(Temp(2), Temp(1)),  # nothing uses t2
            Ret(Const(9)),
        ], temp_count=3)
        optimize_function(func)
        assert [type(ins) for ins in func.body] == [Ret]

    def test_loads_are_side_effect_free(self):
        func = ir_for("int g; int main() { int x = g; return 4; }")
        assert not any(isinstance(ins, Load) for ins in func.body)


class TestEndToEnd:
    def test_optimizer_never_changes_results(self):
        sources = [
            "int main() { int a = 1; int b = a; int c = b; return c + a; }",
            "int f(int x) { int unused = x * 99; return x + 1; }"
            " int main() { return f(4); }",
            "int g[4]; int main() { int i; for (i=0;i<4;i=i+1) g[i]=i;"
            " int t = g[2]; int u = t; return u; }",
        ]
        for source in sources:
            expected = run_program(source).value
            for optimize in (True, False):
                value, __ = compile_for_risc(source, optimize_ir=optimize).run()
                assert value == expected, source

    def test_optimizer_reduces_or_preserves_code_size(self):
        source = """
        int main() {
            int a = 3; int b = a; int c = b; int d = c;
            int waste1 = a * 2; int waste2 = b * 3;
            return d;
        }
        """
        on = compile_for_risc(source, optimize_ir=True)
        off = compile_for_risc(source, optimize_ir=False)
        assert on.code_size_bytes <= off.code_size_bytes


class TestVolatileLoads:
    def test_volatile_load_survives_dce(self):
        # A bare mmio_read in statement position has an unused result;
        # the access itself is the point (device reads have effects).
        func = ir_for("int main() { mmio_read(987144); return 0; }")
        assert any(isinstance(ins, Load) and ins.volatile for ins in func.body)

    def test_volatile_spin_loop_reloads_every_iteration(self):
        source = """
        int main() {
            while (mmio_read(987168) != 0) { }
            return 1;
        }
        """
        func = ir_for(source)
        loads = [ins for ins in func.body if isinstance(ins, Load)]
        assert loads and all(load.volatile for load in loads)
