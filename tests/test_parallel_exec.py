"""Parallel executors and the workload compile cache.

The campaign/evaluation parallel paths must be *byte-identical* to
their serial counterparts - parallelism may only change wall-clock
time, never a single result byte - and the compile cache must be
transparent (same artifacts, just fewer pipeline runs) with a working
bypass knob for tests that time or exercise the pipeline itself.
"""

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.workloads import benchmark
from repro.workloads.cache import (
    clear_compile_cache,
    compile_cache_disabled,
    compile_cache_info,
    compile_cached,
)


class TestParallelCampaign:
    def test_parallel_fingerprint_matches_serial(self):
        config = CampaignConfig(seed=321, injections=6, benchmarks=("towers",))
        serial = run_campaign(config)
        parallel = run_campaign(config, workers=2)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.as_records() == parallel.as_records()
        assert list(serial.golden) == list(parallel.golden)

    def test_workers_one_is_serial(self):
        config = CampaignConfig(seed=321, injections=4, benchmarks=("towers",))
        assert (
            run_campaign(config, workers=1).fingerprint()
            == run_campaign(config).fingerprint()
        )


class TestCompileCache:
    def test_same_key_shares_compile(self):
        clear_compile_cache()
        source = benchmark("towers").source
        first = compile_cached(source)
        second = compile_cached(source)
        assert first is second

    def test_flags_are_part_of_the_key(self):
        source = benchmark("towers").source
        windowed = compile_cached(source, use_windows=True)
        flat = compile_cached(source, use_windows=False)
        assert windowed is not flat
        assert windowed.use_windows and not flat.use_windows

    def test_bypass_knob_compiles_fresh(self):
        source = benchmark("towers").source
        cached = compile_cached(source)
        with compile_cache_disabled():
            assert not compile_cache_info()["enabled"]
            fresh = compile_cached(source)
        assert fresh is not cached
        # ... but the artifact is identical: the pipeline is a pure
        # function of (source, flags).
        assert fresh.asm_source == cached.asm_source
        assert fresh.program.to_words() == cached.program.to_words()
        assert compile_cached(source) is cached  # cache is live again

    def test_cached_machines_are_independent(self):
        source = benchmark("towers").source
        compiled = compile_cached(source)
        first = compiled.make_machine()
        second = compiled.make_machine()
        assert first.memory is not second.memory
        first.memory.store_word(0x9000, 42)
        assert second.memory.load_word(0x9000, count=False) == 0
