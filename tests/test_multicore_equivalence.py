"""N-core differential equivalence: every SMP tier, bit-identical.

The single-core equivalence suite proves the fast and block engines
bit-identical on one machine; this suite proves it for whole multicore
runs.  Every registered scenario at 2 and 4 cores must compose an
identical manifest - schedule fingerprint, device counters, console,
and each core's full shared manifest section - on the reference, fast,
and block tiers.  Divergence anywhere (an interrupt taken one
instruction late, a lock observed in a different order, a stale
compiled block surviving a cross-core code write) shows up as a
manifest mismatch.
"""

import pytest

from repro.cpu.engines import get_spec, smp_engine_names
from repro.multicore import (
    assert_multicore_equivalent,
    run_differential_multicore,
    scenario_names,
)


def test_smp_tier_registry():
    names = smp_engine_names()
    assert names[0] == "reference"  # the oracle leads the sweep
    assert "fast" in names and "block" in names
    for name in names:
        assert get_spec(name).supports_smp
    # The trace tier inlines RAM fast paths that bypass MMIO and owns
    # the exec listener exclusively; the batch executor runs private
    # per-lane memory images.  Neither is SMP-legal.
    assert not get_spec("trace").supports_smp
    assert not get_spec("batch").supports_smp


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("num_cores", [2, 4])
def test_scenarios_bit_identical_across_tiers(name, num_cores):
    result = assert_multicore_equivalent(name, num_cores=num_cores)
    assert result.fingerprint
    assert result.instructions > 0


def test_single_core_multicore_run_is_equivalent_too():
    result = assert_multicore_equivalent("producer_consumer", num_cores=1)
    assert result.manifests[0]["run"]["results"] == [64 * 65 // 2]


def test_quantum_is_part_of_the_contract():
    # The same scenario at a different quantum is a *different* run
    # (schedules differ) but must still be tier-identical.
    result = run_differential_multicore("barrier", num_cores=2, quantum=64)
    assert result.equivalent, result.mismatches
    default = run_differential_multicore("barrier", num_cores=2)
    assert result.fingerprint != default.fingerprint
