"""Tests for the windowed register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.regfile import WindowedRegisterFile
from repro.isa.registers import NUM_PHYSICAL_REGISTERS, REGS_PER_WINDOW_UNIQUE


class TestBasics:
    def test_physical_count_matches_paper(self):
        assert WindowedRegisterFile().physical_count == NUM_PHYSICAL_REGISTERS

    def test_r0_reads_zero(self):
        rf = WindowedRegisterFile()
        rf.write(0, 0, 12345)
        assert rf.read(0, 0) == 0

    def test_write_read_roundtrip(self):
        rf = WindowedRegisterFile()
        rf.write(2, 17, 99)
        assert rf.read(2, 17) == 99

    def test_values_masked_to_32_bits(self):
        rf = WindowedRegisterFile()
        rf.write(0, 5, 1 << 40)
        assert rf.read(0, 5) == 0

    def test_needs_two_windows(self):
        with pytest.raises(ValueError):
            WindowedRegisterFile(num_windows=1)


class TestOverlap:
    def test_globals_visible_everywhere(self):
        rf = WindowedRegisterFile()
        rf.write(0, 5, 777)
        for window in range(8):
            assert rf.read(window, 5) == 777

    def test_caller_low_equals_callee_high(self):
        rf = WindowedRegisterFile()
        caller, callee = 3, 2  # CALL decrements window number
        rf.write(caller, 10, 42)
        assert rf.read(callee, 26) == 42
        rf.write(callee, 31, 88)
        assert rf.read(caller, 15) == 88

    def test_locals_are_private(self):
        rf = WindowedRegisterFile()
        rf.write(3, 20, 1)
        assert rf.read(2, 20) == 0
        assert rf.read(4, 20) == 0

    @given(window=st.integers(0, 7), k=st.integers(0, 5), value=st.integers(0, 2**32 - 1))
    def test_overlap_property(self, window, k, value):
        rf = WindowedRegisterFile()
        caller = (window + 1) % 8
        rf.write(caller, 10 + k, value)
        assert rf.read(window, 26 + k) == value


class TestSpillUnit:
    def test_unit_size(self):
        rf = WindowedRegisterFile()
        assert len(rf.spill_unit(0)) == REGS_PER_WINDOW_UNIQUE

    def test_unit_is_locals_plus_high(self):
        rf = WindowedRegisterFile()
        for reg in range(16, 32):
            rf.write(4, reg, reg * 10)
        unit = rf.spill_unit(4)
        assert unit == [reg * 10 for reg in range(16, 32)]

    def test_roundtrip(self):
        rf = WindowedRegisterFile()
        values = list(range(100, 116))
        rf.set_spill_unit(5, values)
        assert rf.spill_unit(5) == values

    def test_restore_rejects_bad_length(self):
        rf = WindowedRegisterFile()
        with pytest.raises(ValueError):
            rf.set_spill_unit(0, [1, 2, 3])

    def test_unit_does_not_touch_low(self):
        """A frame's LOW block belongs to its callee's spill unit."""
        rf = WindowedRegisterFile()
        rf.write(4, 10, 123)
        rf.set_spill_unit(4, [0] * 16)
        assert rf.read(4, 10) == 123


class TestFlatMode:
    def test_windows_collapse(self):
        rf = WindowedRegisterFile(use_windows=False)
        rf.write(0, 16, 55)
        for window in range(8):
            assert rf.read(window, 16) == 55

    def test_r0_still_zero(self):
        rf = WindowedRegisterFile(use_windows=False)
        rf.write(3, 0, 1)
        assert rf.read(5, 0) == 0


class TestSnapshot:
    def test_snapshot_has_32_entries(self):
        rf = WindowedRegisterFile()
        snap = rf.snapshot(0)
        assert len(snap) == 32
        assert snap["r0"] == 0

    def test_snapshot_reflects_writes(self):
        rf = WindowedRegisterFile()
        rf.write(1, 20, 7)
        assert rf.snapshot(1)["r20"] == 7
