"""Tests for the static CFG builder (repro.analysis.cfg)."""

import pytest

from repro.analysis.cfg import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_COND_BRANCH,
    KIND_RET,
    build_cfg,
)
from repro.asm import assemble
from repro.cc import compile_for_risc
from repro.workloads import benchmark


def cfg_of(source: str):
    program = assemble(source)
    return build_cfg(
        program.to_words(), base=program.base,
        entry=program.entry, symbols=program.symbols,
    )


class TestBlockConstruction:
    def test_straight_line_single_block(self):
        cfg = cfg_of("""
main:
    add r1, r0, #1
    add r2, r1, #2
    ret
    nop
""")
        assert len(cfg.blocks) == 1
        block = cfg.blocks[0]
        assert block.kind == KIND_RET
        assert [c.inst.opcode.name for c in block.body] == ["ADD", "ADD"]
        assert block.terminator.inst.opcode.name == "RET"
        assert block.delay_slot is not None
        assert block.successors == []

    def test_delay_slot_attached_not_a_leader(self):
        cfg = cfg_of("""
main:
    b done
    add r1, r0, #7
    add r2, r0, #2
done:
    ret
    nop
""")
        entry = cfg.blocks[0]
        assert entry.kind == KIND_BRANCH
        assert entry.delay_slot.inst.render() == "add r1, r0, #7"
        # The slot executes with the branch; it must not start a block.
        assert entry.delay_slot.address not in cfg.blocks
        # The unconditional branch has exactly the target as successor.
        assert entry.successors == [cfg.symbols["done"]]

    def test_conditional_branch_has_two_successors(self):
        cfg = cfg_of("""
main:
    sub r0, r1, #0
    beq zero
    nop
    add r2, r0, #1
zero:
    ret
    nop
""")
        entry = cfg.blocks[0]
        assert entry.kind == KIND_COND_BRANCH
        taken = cfg.symbols["zero"]
        fall = entry.terminator.address + 8  # skips the delay slot
        assert sorted(entry.successors) == sorted([taken, fall])

    def test_unreachable_words_stay_undecoded(self):
        cfg = cfg_of("""
main:
    ret
    nop
    add r1, r0, #1
    add r2, r0, #2
""")
        covered = cfg.covered_addresses()
        assert covered == {0, 4}  # ret + slot; the two adds are dead

    def test_data_is_not_code(self):
        cfg = cfg_of("""
    .org 8
main:
    ret
    nop
""")
        # Words 0..7 are padding before main; never decoded.
        assert 0 not in cfg.covered_addresses()
        assert cfg.entry == 8


class TestCallsAndFunctions:
    def test_call_partitions_functions(self):
        cfg = cfg_of("""
main:
    callr r31, helper
    nop
    ret
    nop
helper:
    add r1, r0, #1
    ret
    nop
""")
        assert set(cfg.functions) == {0, cfg.symbols["helper"]}
        entry_func = cfg.functions[0]
        assert entry_func.call_sites == [(0, cfg.symbols["helper"])]
        assert cfg.functions[cfg.symbols["helper"]].name == "helper"

    def test_call_successor_is_continuation(self):
        cfg = cfg_of("""
main:
    callr r31, helper
    nop
    ret
    nop
helper:
    ret
    nop
""")
        entry = cfg.blocks[0]
        assert entry.kind == KIND_CALL
        assert entry.call_target == cfg.symbols["helper"]
        assert entry.successors == [8]  # past the delay slot

    def test_indirect_call_recorded_unresolved(self):
        cfg = cfg_of("""
main:
    call r31, r5, 0
    nop
    ret
    nop
""")
        assert cfg.functions[0].call_sites == [(0, None)]
        assert cfg.functions[0].has_indirect_calls


class TestDiagnostics:
    def test_target_out_of_image(self):
        cfg = cfg_of("""
main:
    b 0x4000
    nop
""")
        kinds = {d.kind for d in cfg.diagnostics}
        assert "target-out-of-image" in kinds

    def test_control_into_non_code(self):
        cfg = cfg_of("""
main:
    add r1, r0, #1
    .word 0
""")
        kinds = {d.kind for d in cfg.diagnostics}
        assert "fallthrough-off-end" in kinds


class TestCompiledPrograms:
    @pytest.mark.parametrize("name", ["f_bit_test", "towers", "e_string_search"])
    def test_compiled_workloads_decode_fully(self, name):
        compiled = compile_for_risc(benchmark(name).source)
        program = compiled.program
        cfg = build_cfg(
            program.to_words(), base=program.base,
            entry=program.entry, symbols=program.symbols,
        )
        assert not cfg.diagnostics
        # Every reachable instruction lies inside the text section.
        lo = program.symbols["__text_start"]
        hi = program.symbols["__text_end"]
        assert all(lo <= a < hi for a in cfg.covered_addresses())
        # The compiled entry points exist as functions.
        assert program.entry in cfg.functions

    def test_labels_prefer_function_names(self):
        compiled = compile_for_risc(benchmark("f_bit_test").source)
        program = compiled.program
        cfg = build_cfg(
            program.to_words(), base=program.base,
            entry=program.entry, symbols=program.symbols,
        )
        # main and __text_start share an address; main wins.
        assert cfg.label_for(program.entry) == "main"
