"""Static window-depth bounds cross-validated against dynamic execution.

The acceptance property of the call-graph analysis: for every bundled
workload the static frame bound dominates the depth the machine
actually reached, and programs proved overflow-free never trap.
"""

import pytest

from repro.cc import compile_for_risc
from repro.isa.registers import NUM_WINDOWS
from repro.workloads import BENCHMARKS
from repro.workloads.extended import EXTENDED_BENCHMARKS

ALL = list(BENCHMARKS) + list(EXTENDED_BENCHMARKS)


@pytest.fixture(scope="module")
def observations():
    """(report, stats) per workload - one compile+run, shared by the tests."""
    results = {}
    for bench in ALL:
        compiled = compile_for_risc(bench.source)
        report = compiled.analyze(name=bench.name)
        __, machine = compiled.run()
        results[bench.name] = (report, machine.stats)
    return results


@pytest.mark.parametrize("bench", ALL, ids=lambda bench: bench.name)
def test_static_bound_dominates_dynamic_depth(bench, observations):
    report, stats = observations[bench.name]
    problems = report.depth.validate_against(
        stats.max_call_depth, stats.window_overflows, NUM_WINDOWS
    )
    assert problems == []
    bound = report.depth.depth_bound
    if bound is not None:
        assert bound >= stats.max_call_depth


def test_recursive_workloads_have_no_bound(observations):
    for name in ("ackermann", "towers", "recursive_qsort"):
        report, stats = observations[name]
        assert report.depth.depth_bound is None
        assert report.depth.recursive
        # Recursion indeed drove the machine past any small bound.
        assert stats.max_call_depth > 4


def test_bounded_workloads_are_exact_or_conservative(observations):
    # fib_iter is a single call from the bootstrap: bound == depth == 2.
    report, stats = observations["fib_iter"]
    assert report.depth.depth_bound == 2
    assert stats.max_call_depth == 2


def test_overflow_free_proofs_hold(observations):
    proved = 0
    for name, (report, stats) in observations.items():
        prediction = report.depth.bound_for(NUM_WINDOWS)
        if prediction["overflow_free"]:
            proved += 1
            assert stats.window_overflows == 0, name
            assert stats.window_underflows == 0, name
    # The proof must actually fire on the non-recursive majority.
    assert proved >= 8


def test_recursive_programs_predicted_to_overflow(observations):
    report, stats = observations["ackermann"]
    prediction = report.depth.bound_for(NUM_WINDOWS)
    assert not prediction["overflow_free"]
    assert prediction["reason"] == "recursive"
    assert stats.window_overflows > 0  # and they really did


def test_validator_rejects_inconsistent_run(observations):
    # Sanity of the cross-check itself: a fabricated deeper-than-bound
    # run must be reported.
    report, __ = observations["fib_iter"]
    problems = report.depth.validate_against(99, 0, NUM_WINDOWS)
    assert problems and "exceeds static bound" in problems[0]
    problems = report.depth.validate_against(2, 5, NUM_WINDOWS)
    assert problems and "overflow-free" in problems[0]
