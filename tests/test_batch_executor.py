"""Batch (lockstep) executor: bit-exactness, peeling, campaign parity.

The contract under test is absolute: :func:`repro.cpu.batch.run_batch`
over N machines leaves every machine **byte-identical** to the same N
scalar runs - every :class:`~repro.cpu.state.ExecutionStats` counter,
every physical register, the full memory image, the trap log, the
console.  The comparisons therefore go through
:func:`repro.cpu.equivalence.state_digest`, the same full-state digest
the engine equivalence suite uses.

Peel paths are exercised deliberately: lane-divergent branches,
lane-divergent overflow traps, lane-divergent memory faults, observer
rejection, and - via the campaign parity tests - faults firing mid-run.
Everything here skips cleanly when numpy is absent (``pip install
.[batch]``).
"""

import pytest

from repro import RiscMachine, assemble
from repro.cpu import batch
from repro.cpu.equivalence import diff_digests, state_digest
from repro.cpu.machine import HaltReason
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.workloads import benchmark
from repro.workloads.cache import compile_cached

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

pytestmark = pytest.mark.skipif(
    not batch.available(), reason="numpy not installed (pip install .[batch])"
)


def _scalar_machines(program, seeds, *, memory_size=None, **kwargs):
    """Fresh machines loaded with *program*, registers seeded per lane."""
    from repro.common.memory import Memory

    machines = []
    for seed in seeds:
        memory = Memory(size=memory_size) if memory_size is not None else None
        machine = RiscMachine(memory, **kwargs)
        program.load_into(machine.memory)
        machine.reset(program.entry)
        for reg, value in seed.items():
            machine.write_reg(reg, value)
        machines.append(machine)
    return machines


def _assert_batch_matches_scalar(source, seeds, **kwargs):
    """run_batch over seeded lanes == the same lanes stepped scalar."""
    program = assemble(source)
    batched = _scalar_machines(program, seeds, **kwargs)
    serial = _scalar_machines(program, seeds, **kwargs)
    executor = batch.run_batch(batched)
    for machine in serial:
        while machine.halted is None:
            machine.step()
    for lane, (got, want) in enumerate(zip(batched, serial)):
        mismatches = diff_digests(state_digest(want), state_digest(got))
        assert not mismatches, f"[lane {lane}] " + "\n".join(mismatches)
    return executor


# Lanes loop a register-seeded number of times, so differently seeded
# lanes disagree on the backedge branch and peel one by one.
BRANCH_DIVERGENT = """
main:
    li    r17, 0
loop:
    add   r17, r17, r16
    sub   r16, r16, #1
    cmp   r16, #0
    bgt   loop
    nop
    mov   r26, r17
    ret
    nop
"""

# r16 doubles each iteration; lanes seeded near 2**31 overflow on
# different iterations.  With trap_on_overflow the trapping lanes peel
# at the exact faulting ADD.
OVERFLOW_DIVERGENT = """
main:
    li    r17, 8
loop:
    add   r16, r16, r16
    sub   r17, r17, #1
    cmp   r17, #0
    bgt   loop
    nop
    mov   r26, r16
    ret
    nop
"""

# Each lane loads through its seeded address: in-range lanes proceed,
# out-of-range lanes trap on the LDL and peel.
MEMORY_FAULT_DIVERGENT = """
main:
    ldl   r17, r16, 0
    mov   r26, r17
    ret
    nop
"""


class TestLockstepBitExactness:
    @pytest.mark.parametrize("name", ["towers", "ackermann"])
    def test_benchmark_lanes_identical_to_scalar(self, name):
        compiled = compile_cached(benchmark(name).source)
        machines = []
        for _ in range(3):
            machine = compiled.make_machine()
            machine.reset(compiled.program.entry)
            machines.append(machine)
        executor = batch.run_batch(machines)
        __, scalar = compiled.run(engine="reference")
        want = state_digest(scalar)
        for lane, machine in enumerate(machines):
            mismatches = diff_digests(want, state_digest(machine))
            assert not mismatches, f"[lane {lane}] " + "\n".join(mismatches)
        # Identical lanes stay in lockstep to the end: one halt peel.
        snapshot = executor.telemetry_snapshot()
        assert snapshot["lanes"] == 3
        assert snapshot["lanes_rejected"] == 0
        assert snapshot["lockstep_steps"] > 0

    def test_branch_divergence_peels_bit_identically(self):
        seeds = [{16: n} for n in (1, 3, 3, 7, 2, 7)]
        executor = _assert_batch_matches_scalar(BRANCH_DIVERGENT, seeds)
        assert executor.telemetry_snapshot()["peels"] > 0

    def test_overflow_trap_divergence_peels_bit_identically(self):
        seeds = [{16: value} for value in (1 << 30, 1 << 28, 64, 3)]
        program = assemble(OVERFLOW_DIVERGENT)
        batched = _scalar_machines(program, seeds)
        serial = _scalar_machines(program, seeds)
        for machine in batched + serial:
            machine.trap_on_overflow = True
        batch.run_batch(batched)
        for machine in serial:
            while machine.halted is None:
                machine.step()
        trapped = 0
        for lane, (got, want) in enumerate(zip(batched, serial)):
            mismatches = diff_digests(state_digest(want), state_digest(got))
            assert not mismatches, f"[lane {lane}] " + "\n".join(mismatches)
            trapped += got.halted is HaltReason.TRAPPED
        assert 0 < trapped < len(batched)  # genuinely divergent outcome

    def test_memory_fault_divergence_peels_bit_identically(self):
        size = 1 << 20
        seeds = [{16: addr} for addr in (0x100, size + 4, 0x200, 0x7FFFFFF0)]
        _assert_batch_matches_scalar(
            MEMORY_FAULT_DIVERGENT, seeds, memory_size=size
        )

    def test_observed_lane_is_rejected_but_still_correct(self):
        program = assemble(BRANCH_DIVERGENT)
        seeds = [{16: 4}, {16: 4}]
        batched = _scalar_machines(program, seeds)
        serial = _scalar_machines(program, seeds)
        steps = []
        batched[1].observers.subscribe("step", lambda *event: steps.append(1))
        executor = batch.run_batch(batched)
        assert executor.telemetry_snapshot()["lanes_rejected"] == 1
        assert steps  # the observer really ran, scalar
        for machine in serial:
            while machine.halted is None:
                machine.step()
        for got, want in zip(batched, serial):
            assert not diff_digests(state_digest(want), state_digest(got))

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=9)
    )
    def test_random_lane_seeds_identical_to_scalar(self, counts):
        seeds = [{16: count, 17: 0} for count in counts]
        _assert_batch_matches_scalar(BRANCH_DIVERGENT, seeds)


class TestUntakenDelaySlotRegression:
    # Regression: the block engine once mis-tracked ``in_delay_slot``
    # for the *untaken* arm of a conditional branch, so a trap in that
    # slot was logged with the wrong slot flag.  Pin all four scalar
    # tiers to the oracle on exactly that shape.
    UNTAKEN_SLOT_TRAP = """
    main:
        li    r16, 1
        cmp   r16, #0
        blt   elsewhere
        ldl   r17, r0, 0x401
        mov   r26, r16
        ret
        nop
    elsewhere:
        mov   r26, r0
        ret
        nop
    """

    def test_trap_in_untaken_slot_identical_on_all_engines(self):
        from repro.cpu.engines import default_sweep_engines

        digests = {}
        for engine in default_sweep_engines():
            machine = RiscMachine(engine=engine)
            program = assemble(self.UNTAKEN_SLOT_TRAP)
            program.load_into(machine.memory)
            machine.run(program.entry)
            assert machine.halted is HaltReason.TRAPPED
            digests[engine] = state_digest(machine)
        oracle, *rest = digests
        for engine in rest:
            mismatches = diff_digests(digests[oracle], digests[engine])
            assert not mismatches, f"[{engine}] " + "\n".join(mismatches)


class TestCampaignParity:
    def _parity(self, config, lanes):
        from repro.faults.batchmode import run_batch_campaign

        serial = run_campaign(config)
        batched = run_batch_campaign(config, lanes=lanes)
        assert batched.fingerprint() == serial.fingerprint()
        assert len(batched.results) == len(serial.results)
        for got, want in zip(batched.results, serial.results):
            assert got == want
        return batched

    def test_small_campaign_fingerprint_identical(self):
        config = CampaignConfig(seed=7, injections=8, benchmarks=("towers",))
        self._parity(config, lanes=4)

    def test_chunk_smaller_than_campaign(self):
        # More trials than lanes: multiple chunks per benchmark.
        config = CampaignConfig(
            seed=11, injections=10, benchmarks=("towers", "ackermann")
        )
        self._parity(config, lanes=3)

    def test_run_campaign_batch_lanes_routes_to_batch_path(self):
        config = CampaignConfig(seed=7, injections=6, benchmarks=("towers",))
        serial = run_campaign(config)
        batched = run_campaign(config, batch_lanes=4)
        assert batched.fingerprint() == serial.fingerprint()

    @settings(max_examples=2, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_random_campaign_seeds_fingerprint_identical(self, seed):
        # Random fault schedules fire mid-run (PC and cycle triggers),
        # peeling lanes out of a live lockstep chunk; the report must
        # still be trial-for-trial identical to the serial path.
        config = CampaignConfig(seed=seed, injections=6, benchmarks=("towers",))
        self._parity(config, lanes=6)
