"""Calibration sanity: the machine models land in historical ranges.

These tests keep the cost models honest: if someone retunes a trait
table into implausibility (a 20-MIPS VAX-11/780, a 0.01-MIPS 68000),
the suite fails even though all the relative-shape tests might still
pass.
"""

import pytest

from repro.baselines import ALL_TRAITS, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.cpu.machine import CYCLE_TIME_NS
from repro.workloads import benchmark

#: plausible sustained MIPS windows for each model on integer C code
MIPS_RANGES = {
    "VAX-11/780": (0.3, 2.5),
    "PDP-11/70": (0.3, 2.0),
    "MC68000": (0.2, 1.5),
    "Z8002": (0.2, 1.2),
}

BENCH = "towers"  # call-mix workload, quick to simulate


@pytest.fixture(scope="module")
def workload_source():
    return benchmark(BENCH).source


class TestMips:
    def test_risc_i_sustains_one_instruction_per_cycle_or_so(self, workload_source):
        compiled = compile_for_risc(workload_source)
        __, machine = compiled.run()
        cpi = machine.stats.cycles / machine.stats.instructions
        assert 1.0 <= cpi <= 1.6  # loads/stores and traps push CPI past 1
        mips = 1e3 / (cpi * CYCLE_TIME_NS)
        assert 1.5 <= mips <= 2.5

    @pytest.mark.parametrize("traits", ALL_TRAITS, ids=lambda t: t.name)
    def test_baseline_mips_in_historical_window(self, traits, workload_source):
        generated = compile_for_cisc(compile_to_ir(workload_source), traits)
        executor = CiscExecutor(generated.program, traits)
        executor.run()
        seconds = executor.cycles * traits.cycle_time_ns * 1e-9
        mips = executor.instructions_executed / seconds / 1e6
        low, high = MIPS_RANGES[traits.name]
        assert low <= mips <= high, f"{traits.name}: {mips:.2f} MIPS"


class TestCyclePerInstruction:
    @pytest.mark.parametrize("traits", ALL_TRAITS, ids=lambda t: t.name)
    def test_microcoded_cpi_is_well_above_one(self, traits, workload_source):
        generated = compile_for_cisc(compile_to_ir(workload_source), traits)
        executor = CiscExecutor(generated.program, traits)
        executor.run()
        cpi = executor.cycles / executor.instructions_executed
        assert cpi >= 2.5, f"{traits.name}: CPI {cpi:.2f} implausibly low"

    def test_instruction_fetch_traffic_tracks_code_bytes(self, workload_source):
        ir = compile_to_ir(workload_source)
        for traits in ALL_TRAITS:
            generated = compile_for_cisc(ir, traits)
            executor = CiscExecutor(generated.program, traits)
            executor.run()
            average = executor.fetch_bytes / executor.instructions_executed
            assert 1.0 <= average <= 8.0, traits.name
