"""Tests for the CISC listing renderer."""

from repro.baselines import VaxTraits, M68KTraits
from repro.baselines.listing import render_listing, size_histogram
from repro.cc import compile_for_cisc, compile_to_ir

SOURCE = "int main() { int x = 5; int y = x * 3; return y - 1; }"


def build(traits):
    return compile_for_cisc(compile_to_ir(SOURCE), traits)


class TestListing:
    def test_contains_labels_and_sizes(self):
        traits = VaxTraits()
        generated = build(traits)
        listing = render_listing(generated.program, traits)
        assert "main:" in listing
        assert "_main:" in listing
        assert "B]" in listing
        assert f"{generated.static_bytes} bytes total" in listing

    def test_offsets_are_monotone(self):
        traits = VaxTraits()
        generated = build(traits)
        listing = render_listing(generated.program, traits)
        offsets = [int(line.strip().split()[0], 16)
                   for line in listing.splitlines()
                   if line.strip().startswith("0x")]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_histogram_counts_every_instruction(self):
        traits = M68KTraits()
        generated = build(traits)
        histogram = size_histogram(generated.program, traits)
        assert sum(histogram.values()) == len(generated.program.instructions)

    def test_vax_uses_more_size_classes_than_fixed_risc(self):
        """Variable-length encodings produce a spread of sizes."""
        traits = VaxTraits()
        generated = build(traits)
        histogram = size_histogram(generated.program, traits)
        assert len(histogram) >= 2
