"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    buffer = io.StringIO()
    try:
        spec.loader.exec_module(module)
        with redirect_stdout(buffer):
            module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return buffer.getvalue()


class TestExamples:
    def test_examples_present(self):
        assert "quickstart.py" in EXAMPLES
        assert len(EXAMPLES) >= 6

    @pytest.mark.parametrize("name", EXAMPLES, ids=str)
    def test_example_runs(self, name):
        output = run_example(name)
        assert output.strip(), f"{name} produced no output"
        assert "Traceback" not in output

    def test_quickstart_result(self):
        assert "55" in run_example("quickstart.py")

    def test_race_declares_risc_times(self):
        output = run_example("compile_and_race.py")
        assert "RISC I" in output
        assert "x RISC I" in output

    def test_windows_demo_shows_traps(self):
        output = run_example("register_windows_demo.py")
        assert "overflows" in output

    def test_separate_compilation_links(self):
        output = run_example("separate_compilation.py")
        assert "expected 88" in output
