"""Tests for the experiment drivers (tables, figures, ablations).

Heavier full-suite runs live in benchmarks/; these tests use the fast
benchmark subset and check the *shape* claims each experiment makes.
"""

import pytest

from repro.evaluation import Table, run_benchmark_matrix
from repro.evaluation import (
    ablations,
    f1_formats,
    f2_windows,
    f3_delayed_branch,
    f4_window_sweep,
    t1_hll_frequency,
    t2_machines,
    t3_call_overhead,
    t4_code_size,
    t5_exec_time,
    t6_window_overflow,
    t7_chip_area,
)
from repro.evaluation.common import FAST_SUBSET, RISC_NAME, VAX_NAME


class TestTableRendering:
    def test_alignment_and_title(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 22.5)
        text = table.render()
        assert "Demo" in text
        assert "22.50" in text

    def test_column_access(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]


class TestMatrix:
    def test_records_have_consistent_results(self):
        records = run_benchmark_matrix(FAST_SUBSET)
        for name in FAST_SUBSET:
            values = {records[(name, machine)].result
                      for __, machine in records if __ == name}
            assert len(values) == 1, f"{name}: targets disagree {values}"

    def test_cache_returns_same_object(self):
        first = run_benchmark_matrix(FAST_SUBSET)
        second = run_benchmark_matrix(FAST_SUBSET)
        assert first is second


class TestT1:
    def test_call_dominates_weighted_columns(self):
        table = t1_hll_frequency.run(FAST_SUBSET)
        operations = table.column("operation")
        refs = table.column("memory-ref %")
        by_op = dict(zip(operations, refs))
        assert by_op["CALL"] == max(refs)

    def test_occurrence_of_call_is_not_dominant(self):
        table = t1_hll_frequency.run(FAST_SUBSET)
        by_op = dict(zip(table.column("operation"), table.column("occurrence %")))
        assert by_op["CALL"] < 50.0


class TestT2:
    def test_risc_row_claims(self):
        table = t2_machines.run()
        risc = [row for row in table.rows if row[0] == "RISC I"][0]
        assert risc[2] == 31  # instructions
        assert risc[3] == 0  # microcode bits
        assert risc[4] == "32-32"  # fixed size
        assert risc[5] == 138

    def test_all_machines_present(self):
        names = set(table_row[0] for table_row in t2_machines.run().rows)
        assert {"RISC I", "VAX-11/780", "MC68000", "Z8002", "IBM 370/168"} <= names


class TestT3:
    def test_windows_cut_call_memory_traffic(self):
        table = t3_call_overhead.run(calls=100)
        by_machine = {row[0]: row for row in table.rows}
        risc_refs = by_machine["RISC I"][2]
        for machine in (VAX_NAME, "MC68000"):
            assert by_machine[machine][2] > risc_refs + 4

    def test_risc_call_nearly_free(self):
        table = t3_call_overhead.run(calls=100)
        by_machine = {row[0]: row for row in table.rows}
        assert by_machine["RISC I"][2] < 2.0  # data refs per call


class TestT4T5:
    def test_code_size_shape(self):
        ratio = t4_code_size.mean_risc_to_vax_ratio(FAST_SUBSET)
        assert 1.0 < ratio < 2.0  # paper: modestly larger, not smaller

    def test_risc_wins_execution_time_on_call_heavy_code(self):
        slowdowns = t5_exec_time.speedup_over("MC68000", FAST_SUBSET)
        assert all(factor > 1.0 for factor in slowdowns.values())
        assert slowdowns["towers"] > 2.0

    def test_t5_table_renders(self):
        text = t5_exec_time.run(FAST_SUBSET).render()
        assert "RISC I" in text


class TestT6:
    def test_more_windows_fewer_overflows(self):
        table = t6_window_overflow.run(FAST_SUBSET, window_counts=(4, 8, 16))
        for row in table.rows:
            rates = [float(cell.rstrip("%")) for cell in row[3:]]
            assert rates == sorted(rates, reverse=True)

    def test_towers_rarely_overflows_with_8_windows(self):
        assert t6_window_overflow.overflow_rate("towers", 8) < 0.05

    def test_ackermann_pathology(self):
        assert t6_window_overflow.overflow_rate("ackermann", 8) > 0.2


class TestT7:
    def test_control_percentages(self):
        table = t7_chip_area.run()
        by_machine = {row[0]: row[1] for row in table.rows}
        assert by_machine["RISC I"] < 10
        assert by_machine["MC68000"] > 30


class TestFigures:
    def test_f1_mentions_both_formats(self):
        text = f1_formats.run()
        assert "short-immediate" in text
        assert "long-immediate" in text
        assert "opcode" in text

    def test_f2_shows_overlap_identity(self):
        text = f2_windows.run()
        assert "==" in text
        assert "138" in text

    def test_f2_consistent_for_all_windows(self):
        for window in range(8):
            assert "!!" not in f2_windows.run(window)

    def test_f3_illustration_shows_cycle_savings(self):
        text = f3_delayed_branch.illustration()
        assert "cycles: 4" in text
        assert "cycles: 3" in text

    def test_f3_fill_rate_positive(self):
        table = f3_delayed_branch.fill_rate_table(FAST_SUBSET)
        total = [row for row in table.rows if row[0] == "TOTAL"][0]
        assert total[2] > 0

    def test_f4_spills_decrease_with_windows(self):
        table = f4_window_sweep.run(FAST_SUBSET)
        for row in table.rows:
            values = [float(cell) for cell in row[1:]]
            assert values[0] >= values[-1]


class TestAblations:
    def test_a1_windows_help(self):
        table = ablations.a1_windows(("towers", "recursive_qsort"))
        for row in table.rows:
            assert row[5] > row[4]  # flat mode makes more data references

    def test_a2_slot_filling_helps(self):
        table = ablations.a2_delay_slots(("towers",))
        row = table.rows[0]
        assert row[1] < row[2]  # fewer cycles when filled

    def test_a3_zero_overlap_never_best(self):
        table = ablations.a3_overlap(("towers", "ackermann"))
        for row in table.rows:
            values = [float(cell) for cell in row[1:]]
            assert values[0] > min(values)
