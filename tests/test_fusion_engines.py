"""Fused execution across the engine tiers.

The contract under test: arming statically proved macro-op pairs on the
fast/block/trace engines never changes anything architecturally
observable — state, memory image, trap records, every ``ExecutionStats``
counter — while the engines attribute one dispatch per completed pair.
Covers the bundled workloads, hypothesis-generated structured programs,
and dynamic de-fusion under self-modifying code.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RiscMachine, assemble
from repro.analysis.fusion import analyze_program, arm_machine
from repro.cc import compile_for_risc
from repro.cpu.engines import REGISTRY, default_sweep_engines
from repro.cpu.equivalence import (
    assert_engines_equivalent,
    diff_digests,
    state_digest,
)
from repro.workloads import benchmark
from tests.test_differential_structured import structured_programs

FUSION_ENGINES = tuple(
    name for name in default_sweep_engines() if REGISTRY[name].supports_fusion
)


def fused_vs_reference(program, *, engine: str, num_windows: int = 8):
    """Digests of a fusion-armed run and an unfused reference run."""
    reference = RiscMachine(num_windows=num_windows, engine="reference")
    program.load_into(reference.memory)
    reference.run(program.entry)

    machine = RiscMachine(num_windows=num_windows, engine=engine)
    program.load_into(machine.memory)
    report = arm_machine(machine, program)
    machine.run(program.entry)
    return reference, machine, report


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("name", ["towers", "ackermann", "f_bit_test"])
    def test_fusion_on_bit_identical_across_engines(self, name):
        assert_engines_equivalent(benchmark(name).source, fusion=True)

    @pytest.mark.parametrize("num_windows", [2, 8])
    def test_fusion_under_window_trap_pressure(self, num_windows):
        # Window overflow traps unwind mid-pair on the recursion-heavy
        # workloads; the fused tiers must stay precise.
        assert_engines_equivalent(
            benchmark("ackermann").source,
            fusion=True,
            num_windows=num_windows,
        )

    @pytest.mark.parametrize("engine", FUSION_ENGINES)
    def test_fused_dispatches_attributed(self, engine):
        program = assemble(TOWERS_ASM)
        reference, machine, report = fused_vs_reference(
            program, engine=engine
        )
        assert not diff_digests(
            state_digest(reference), state_digest(machine)
        )
        assert machine.engine.fused_dispatches > 0
        snapshot = machine.engine.telemetry_snapshot()
        assert snapshot["fused_pairs_armed"] == len(report.pairs)
        assert snapshot["fused_dispatches"] == machine.engine.fused_dispatches


# A small call-heavy program exercising all five idioms (two-word li,
# cmp+branch, call+slot, load-op, op-store) without the compiler.
TOWERS_ASM = """
main:
    li   r15, 0x9000
    li   r16, 0x123456
    stl  r16, r15, 0
    ldl  r17, r15, 0
    add  r18, r17, #1
    li   r20, 0
loop:
    callr r31, bump
    li   r10, 5
    add  r20, r20, r16
    cmp  r20, #40
    blt  loop
    nop
    add  r26, r20, r18
    ret
    nop
bump:
    add  r16, r10, #3
    stl  r16, r15, 4
    ret
    nop
"""


class TestCounterConsistency:
    def test_fast_engine_hits_match_report(self):
        program = assemble(TOWERS_ASM)
        __, machine, report = fused_vs_reference(program, engine="fast")
        hits = machine.engine.fused_hit_counts()
        pair_addresses = {pair.first for pair in report.pairs}
        assert set(hits) <= pair_addresses
        assert sum(hits.values()) == machine.engine.fused_dispatches

    def test_rearming_resets_counters(self):
        program = assemble(TOWERS_ASM)
        machine = RiscMachine(engine="fast")
        program.load_into(machine.memory)
        report = arm_machine(machine, program)
        machine.run(program.entry)
        first = machine.engine.fused_dispatches
        assert first > 0
        machine.engine.arm_fusion(report.pairs)
        assert machine.engine.fused_dispatches == 0


# The store rewrites the *second half* of the proved `li` pair at
# ``slot`` through a register base (statically unresolvable, so the
# analyzer legitimately proves the pair); the engines must de-fuse at
# run time and match the reference from the patched image onward.
DEFUSE_PATCH = """
main:
    li   r20, slot
    add  r20, r20, #4
    ldl  r19, r0, donor
    li   r17, 0
    li   r18, 0
loop:
slot:
    li   r16, 0x123456
    add  r18, r18, r16
    cmp  r17, #0
    bne  done
    nop
    stl  r19, r20, 0
    add  r17, r17, #1
    b    loop
    nop
done:
    mov  r26, r18
    ret
    nop
donor:
    add  r16, r16, #100
"""


class TestSelfModifyingDefusion:
    def test_pair_is_statically_proved(self):
        report = analyze_program(assemble(DEFUSE_PATCH), name="defuse")
        slot = assemble(DEFUSE_PATCH).symbols["slot"]
        assert slot in {pair.first for pair in report.pairs}
        assert not report.rejected

    @pytest.mark.parametrize("engine", FUSION_ENGINES)
    def test_patched_pair_defuses_and_matches_reference(self, engine):
        program = assemble(DEFUSE_PATCH)
        reference, machine, report = fused_vs_reference(
            program, engine=engine
        )
        assert not diff_digests(
            state_digest(reference), state_digest(machine)
        )
        # The slot pair runs twice dynamically but only its pre-patch
        # execution may count as fused; the write invalidated the rest.
        slot = program.symbols["slot"]
        if engine == "fast":
            assert machine.engine.fused_hit_counts().get(slot, 0) == 1


COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPropertyEquivalence:
    @settings(max_examples=10, **COMMON_SETTINGS)
    @given(structured_programs())
    def test_fusion_on_vs_off_bit_identical_everywhere(self, source):
        compiled = compile_for_risc(source)
        report = analyze_program(compiled.program, name="fuzz")
        for engine in FUSION_ENGINES:
            __, plain = compiled.run(engine=engine)
            machine = compiled.make_machine(engine=engine)
            armed = arm_machine(machine, report)
            machine.run(compiled.program.entry)
            mismatches = diff_digests(
                state_digest(plain), state_digest(machine)
            )
            assert not mismatches, f"[{engine}] " + "\n".join(mismatches)
            assert len(armed.pairs) == len(report.pairs)
            if engine == "fast":
                hits = machine.engine.fused_hit_counts()
                assert set(hits) <= {pair.first for pair in report.pairs}
                assert (
                    sum(hits.values()) == machine.engine.fused_dispatches
                ), source
