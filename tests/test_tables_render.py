"""Tests for the table/bar-chart rendering utilities."""

from repro.evaluation.f4_window_sweep import chart
from repro.evaluation.tables import Table, bar_chart


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart("demo", [("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 10
        assert lines[3].count("#") == 5

    def test_zero_values(self):
        text = bar_chart("demo", [("a", 0.0), ("b", 0.0)])
        assert "a" in text and "b" in text

    def test_empty_points(self):
        assert "demo" in bar_chart("demo", [])

    def test_window_sweep_chart(self):
        trace = [1] * 12 + [-1] * 12
        text = chart(trace)
        assert "N=2" in text and "N=16" in text


class TestTableNotes:
    def test_notes_rendered(self):
        table = Table("T", ["a"], notes=["first note", "second note"])
        table.add_row(1)
        text = table.render()
        assert "note: first note" in text
        assert "note: second note" in text

    def test_mixed_cell_types(self):
        table = Table("T", ["name", "x", "pct"])
        table.add_row("row", 1.23456, "45%")
        text = table.render()
        assert "1.23" in text
        assert "45%" in text

    def test_column_out_of_range(self):
        import pytest

        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.column("missing")
