"""Assembler tests: syntax, pseudo-instructions, directives, errors."""

import pytest

from repro.asm import assemble, disassemble_program
from repro.errors import AssemblerError
from repro.isa import Instruction, Opcode, decode
from repro.isa.conditions import Cond


def first_inst(source: str) -> Instruction:
    return decode(assemble(source).to_words()[0])


class TestBasicInstructions:
    def test_three_operand_register(self):
        inst = first_inst("add r1, r2, r3")
        assert inst == Instruction(Opcode.ADD, dest=1, rs1=2, s2=3)

    def test_immediate_with_hash(self):
        inst = first_inst("sub r1, r2, #-5")
        assert inst == Instruction(Opcode.SUB, dest=1, rs1=2, s2=-5, imm=True)

    def test_immediate_without_hash(self):
        inst = first_inst("ldl r3, r2, 8")
        assert inst == Instruction(Opcode.LDL, dest=3, rs1=2, s2=8, imm=True)

    def test_scc_suffix(self):
        inst = first_inst("adds r1, r2, r3")
        assert inst.scc
        assert inst.opcode is Opcode.ADD

    def test_store_operands(self):
        inst = first_inst("stl r7, r2, 12")
        assert inst == Instruction(Opcode.STL, dest=7, rs1=2, s2=12, imm=True)

    def test_hex_and_char_literals(self):
        assert first_inst("add r1, r0, #0x1F").s2 == 31
        assert first_inst("add r1, r0, #'A'").s2 == 65

    def test_case_insensitive_mnemonic(self):
        assert first_inst("ADD r1, r2, r3").opcode is Opcode.ADD

    def test_register_aliases(self):
        inst = first_inst("add sp, fp, ra")
        assert (inst.dest, inst.rs1, inst.s2) == (9, 8, 31)

    def test_ldhi(self):
        inst = first_inst("ldhi r4, 0x12345")
        assert inst.opcode is Opcode.LDHI
        assert inst.dest == 4

    def test_getpsw_putpsw(self):
        assert first_inst("getpsw r5").dest == 5
        inst = first_inst("putpsw r5, #0")
        assert inst.opcode is Opcode.PUTPSW and inst.rs1 == 5

    def test_comments_ignored(self):
        program = assemble("add r1, r1, r1 ; comment\n// whole line comment\n")
        assert len(program.to_words()) == 1


class TestJumps:
    def test_conditional_jmp_indexed(self):
        inst = first_inst("jmp eq, r2, 0")
        assert inst.opcode is Opcode.JMP
        assert inst.cond is Cond.EQ
        assert inst.rs1 == 2

    def test_jmpr_label(self):
        program = assemble("start: jmpr alw, start")
        inst = decode(program.to_words()[0])
        assert inst.imm19 == 0

    def test_branch_sugar(self):
        source = "loop: nop\n beq loop"
        program = assemble(source)
        inst = decode(program.to_words()[1])
        assert inst.opcode is Opcode.JMPR
        assert inst.cond is Cond.EQ
        assert inst.imm19 == -4

    def test_bare_b_is_always(self):
        program = assemble("x: b x")
        assert decode(program.to_words()[0]).cond is Cond.ALW

    def test_callr_default_and_explicit_dest(self):
        program = assemble("f: callr r31, f")
        inst = decode(program.to_words()[0])
        assert inst.opcode is Opcode.CALLR
        assert inst.dest == 31

    def test_call_indexed(self):
        inst = first_inst("call r31, r2, 0")
        assert inst.opcode is Opcode.CALL
        assert inst.rs1 == 2

    def test_ret_default(self):
        inst = first_inst("ret")
        assert inst == Instruction(Opcode.RET, rs1=31, s2=8, imm=True)

    def test_ret_explicit(self):
        inst = first_inst("ret r20, #4")
        assert inst == Instruction(Opcode.RET, rs1=20, s2=4, imm=True)

    def test_branch_out_of_range_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmpr alw, 0x7000000")


class TestPseudoInstructions:
    def test_nop(self):
        assert first_inst("nop") == Instruction(Opcode.ADD, dest=0, rs1=0, s2=0, imm=True)

    def test_mov_register(self):
        inst = first_inst("mov r4, r9")
        assert inst == Instruction(Opcode.ADD, dest=4, rs1=9, s2=0, imm=True)

    def test_mov_immediate(self):
        inst = first_inst("mov r4, #12")
        assert inst == Instruction(Opcode.ADD, dest=4, rs1=0, s2=12, imm=True)

    def test_li_small_is_one_instruction(self):
        assert len(assemble("li r4, 100").to_words()) == 1

    def test_li_large_is_two_instructions(self):
        words = assemble("li r4, 0x12345678").to_words()
        assert len(words) == 2
        assert decode(words[0]).opcode is Opcode.LDHI

    def test_li_negative_small(self):
        inst = first_inst("li r4, -100")
        assert inst.s2 == -100

    def test_cmp(self):
        inst = first_inst("cmp r4, #7")
        assert inst.opcode is Opcode.SUB
        assert inst.dest == 0
        assert inst.scc


class TestDirectivesAndSymbols:
    def test_word_directive(self):
        words = assemble(".word 1, 2, 0xFF")
        assert words.to_words() == [1, 2, 255]

    def test_word_with_label_reference(self):
        program = assemble("a: .word 7\nb: .word a")
        assert program.to_words()[1] == 0

    def test_space(self):
        program = assemble(".space 8\n.word 5")
        assert program.to_words() == [0, 0, 5]

    def test_ascii_and_asciiz(self):
        program = assemble('.asciiz "AB"')
        assert bytes(program.image) == b"AB\0"

    def test_align(self):
        program = assemble('.ascii "A"\n.align\n.word 9')
        assert program.to_words() == [0x41000000, 9]

    def test_org(self):
        program = assemble(".org 16\nstart: .word 1")
        assert program.symbols["start"] == 16
        assert program.to_words()[4] == 1

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".org 8\n.org 4")

    def test_equate(self):
        inst = first_inst("k = 40\nadd r1, r0, #k + 2")
        assert inst.s2 == 42

    def test_label_and_code_on_same_line(self):
        program = assemble("start: add r1, r1, r1")
        assert program.symbols["start"] == 0

    def test_entry_defaults_to_main(self):
        program = assemble("nop\nmain: nop")
        assert program.entry == 4

    def test_entry_without_main_is_base(self):
        assert assemble("nop", base=0x40).entry == 0x40

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmpr alw, nowhere")

    def test_source_map_tracks_lines(self):
        program = assemble("nop\nadd r1, r1, r1")
        assert program.source_map[0] == 1
        assert program.source_map[4] == 2


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_trailing_garbage(self):
        with pytest.raises(AssemblerError):
            assemble("nop r1")

    def test_immediate_too_large(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r0, #5000")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r99, r0, #1")

    def test_unknown_condition(self):
        with pytest.raises(AssemblerError):
            assemble("jmp zz, r0, 0")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("nop\nbadop r1")
        assert "line 2" in str(exc.value)


class TestDisassemblerRoundtrip:
    SOURCE = """
    main:
        add   r1, r2, r3
        subs  r4, r5, #-10
        ldl   r6, r7, 20
        stl   r6, r7, 24
        ldhi  r8, 100
        jmp   ne, r1, 0
        callr r31, main
        ret
        getpsw r9
    """

    def test_reassembly_preserves_words(self):
        program = assemble(self.SOURCE)
        words = program.to_words()
        listing = disassemble_program(words)
        rebuilt_source = "\n".join(line.split(": ", 1)[1] for line in listing)
        rebuilt = assemble(rebuilt_source)
        assert rebuilt.to_words() == words


class TestDelaySlotRejection:
    """The assembler refuses multi-word pseudos in delay slots.

    Regression for a miscompile where a two-word ``li`` scheduled into a
    call's delay slot executed only its ``ldhi`` half on the taken path,
    leaving the register holding just the high bits.
    """

    MISCOMPILE_SHAPE = """
main:
    callr r31, f
    li r5, 1000000
    ret
    nop
f:
    ret
    nop
"""

    def test_wide_li_in_call_slot_rejected(self):
        with pytest.raises(AssemblerError) as exc:
            assemble(self.MISCOMPILE_SHAPE)
        message = str(exc.value)
        assert "delay slot" in message
        assert "torn" in message
        assert "line 4" in message  # points at the pseudo, names the transfer

    @pytest.mark.parametrize("transfer", ["b f", "beq f", "jmpr alw, f",
                                          "callr r31, f", "ret"])
    def test_every_delayed_transfer_guards_its_slot(self, transfer):
        source = f"""
main:
    {transfer}
    li r5, 1000000
f:
    ret
    nop
"""
        with pytest.raises(AssemblerError, match="delay slot"):
            assemble(source)

    def test_narrow_li_in_slot_is_fine(self):
        program = assemble("""
main:
    callr r31, f
    li r5, 7
f:
    ret
    nop
""")
        assert program.size == 16

    def test_wide_li_outside_slot_is_fine(self):
        program = assemble("""
main:
    li r5, 1000000
    callr r31, f
    nop
f:
    ret
    nop
""")
        assert program.size == 24
