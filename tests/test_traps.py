"""Trap-architecture edge cases: structured records, vectoring, watchdogs."""

import pytest

from repro import RiscMachine, assemble
from repro.cpu.machine import (
    HaltReason,
    TrapCause,
    TRAP_OVERHEAD_CYCLES,
)
from repro.errors import TrapError
from repro.isa.registers import REGS_PER_WINDOW_UNIQUE

SPILL_BYTES = 4 * REGS_PER_WINDOW_UNIQUE


def make_machine(source: str, **kwargs) -> tuple[RiscMachine, "object"]:
    program = assemble(source)
    machine = RiscMachine(**kwargs)
    program.load_into(machine.memory)
    machine.reset(program.entry)
    return machine, program


def run_to_halt(machine: RiscMachine) -> None:
    while machine.halted is None:
        machine.step()


DEEP_RECURSION = """
main:
    li    r10, 40
    callr r31, deep
    nop
    mov   r26, r10
    ret
    nop
deep:
    cmp   r26, #0
    ble   deep_done
    nop
    sub   r10, r26, #1
    callr r31, deep
    nop
deep_done:
    mov   r26, #1
    ret
    nop
"""


class TestMemoryTraps:
    def test_misaligned_load_produces_structured_record(self):
        machine, __ = make_machine(
            """
            main:
                ldl r26, r0, 0x401
                ret
                nop
            """
        )
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        record = machine.last_trap
        assert record.cause is TrapCause.MISALIGNED_ACCESS
        assert record.address == 0x401
        assert record.vectored is False
        assert record.in_delay_slot is False
        assert machine.stats.by_trap_cause["MISALIGNED_ACCESS"] == 1

    def test_misaligned_store_traps(self):
        machine, __ = make_machine(
            """
            main:
                li  r16, 7
                stl r16, r0, 0x402
                ret
                nop
            """
        )
        run_to_halt(machine)
        assert machine.last_trap.cause is TrapCause.MISALIGNED_ACCESS
        assert machine.last_trap.address == 0x402

    def test_out_of_range_load_traps_with_address(self):
        machine, __ = make_machine(
            """
            main:
                li  r16, 0x7ff00000
                ldl r26, r16, 0
                ret
                nop
            """
        )
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap.cause is TrapCause.OUT_OF_RANGE_ACCESS
        assert machine.last_trap.address == 0x7FF00000

    def test_trap_in_delay_slot_is_flagged(self):
        machine, __ = make_machine(
            """
            main:
                cmp r0, #0
                beq target
                ldl r16, r0, 0x401   ; delay slot of a taken branch
            target:
                ret
                nop
            """
        )
        run_to_halt(machine)
        record = machine.last_trap
        assert record.cause is TrapCause.MISALIGNED_ACCESS
        assert record.in_delay_slot is True

    def test_faulting_instruction_has_no_effect(self):
        machine, __ = make_machine(
            """
            main:
                li  r26, 1234
                ldl r26, r0, 0x401
                ret
                nop
            """
        )
        run_to_halt(machine)
        # Precise trap: the destination register keeps its prior value.
        assert machine.read_reg(26) == 1234


class TestIllegalInstruction:
    def test_illegal_word_traps_with_word(self):
        machine, program = make_machine("main:\n nop\n ret\n nop")
        machine.memory.store_word(program.entry, 0xFFFFFFFF, count=False)
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        record = machine.last_trap
        assert record.cause is TrapCause.ILLEGAL_INSTRUCTION
        assert record.word == 0xFFFFFFFF
        assert record.pc == program.entry


class TestWindowEdgeCases:
    def test_overflow_at_exact_stack_limit_boundary(self):
        # Room for exactly one spilled window: the spill that lands the
        # pointer exactly ON the limit succeeds, the next one traps.
        machine, __ = make_machine(DEEP_RECURSION)
        machine.window_stack_limit = machine.memory.size - SPILL_BYTES
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        record = machine.last_trap
        assert record.cause is TrapCause.WINDOW_OVERFLOW_STACK
        assert machine.stats.window_overflows == 1
        # The refused pointer is one spill unit below the limit.
        assert record.address == machine.window_stack_limit - SPILL_BYTES
        assert machine.window_save_pointer == machine.window_stack_limit

    def test_ret_with_empty_save_stack_traps(self):
        machine, __ = make_machine("main:\n ret\n nop")
        # Fake a deeper call chain than the (empty) save stack can honour.
        machine.call_depth = 2
        machine.resident_windows = 1
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap.cause is TrapCause.WINDOW_UNDERFLOW_EMPTY
        # Precision: the refused RET left the frame bookkeeping intact.
        assert machine.call_depth == 2

    def test_ret_with_no_frame_traps(self):
        machine, __ = make_machine("main:\n ret\n nop")
        machine.call_depth = 0
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap.cause is TrapCause.RET_NO_FRAME


class TestArithmeticOverflowTrap:
    def test_signed_overflow_traps_when_enabled(self):
        machine, __ = make_machine(
            """
            main:
                li  r16, 0x7fffffff
                add r26, r16, #1
                ret
                nop
            """
        )
        machine.trap_on_overflow = True
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap.cause is TrapCause.ARITHMETIC_OVERFLOW
        # Precise: the overflowing result was never written.
        assert machine.read_reg(26) == 0

    def test_overflow_silent_by_default(self):
        machine, __ = make_machine(
            """
            main:
                li  r16, 0x7fffffff
                add r26, r16, #1
                ret
                nop
            """
        )
        run_to_halt(machine)
        assert machine.halted is HaltReason.RETURNED
        # main's r26 is the caller-visible result register (r10 overlap)
        assert machine.result == 0x80000000
        assert machine.stats.traps == 0


VECTORED_PROGRAM = """
main:
    ldl  r16, r0, 0x401    ; misaligned: vectors to handler
    mov  r26, r5           ; resumed here with the cause code in r5
    ret
    nop
handler:
    gtlpc r16              ; faulting PC (must be read first: every
                           ; executed instruction advances lpc)
    mov  r5, r17           ; handler ABI: cause code in r17
    mov  r6, r18           ; faulting address in r18
    ret  r16, 4            ; resume at the instruction after the fault
    nop
"""


class TestVectoredHandlers:
    def run_vectored(self):
        machine, program = make_machine(VECTORED_PROGRAM)
        machine.trap_vectors.set(
            TrapCause.MISALIGNED_ACCESS, program.symbols["handler"]
        )
        run_to_halt(machine)
        return machine, program

    def test_handler_receives_cause_and_address(self):
        machine, __ = self.run_vectored()
        assert machine.halted is HaltReason.RETURNED
        assert machine.result == int(TrapCause.MISALIGNED_ACCESS)
        assert machine.read_reg(6) == 0x401  # global r6: faulting address

    def test_trap_record_marked_vectored(self):
        machine, program = self.run_vectored()
        assert len(machine.trap_log) == 1
        record = machine.trap_log[0]
        assert record.vectored is True
        assert record.pc == program.entry  # the faulting ldl
        assert machine.stats.traps == 1

    def test_vectoring_charges_trap_overhead(self):
        machine, __ = self.run_vectored()
        unvectored, __ = make_machine(VECTORED_PROGRAM)
        # Without a handler the same program halts at the trap.
        run_to_halt(unvectored)
        assert unvectored.halted is HaltReason.TRAPPED
        assert machine.stats.cycles >= TRAP_OVERHEAD_CYCLES

    def test_unregistered_cause_still_halts(self):
        machine, program = make_machine(VECTORED_PROGRAM)
        machine.trap_vectors.set(
            TrapCause.ILLEGAL_INSTRUCTION, program.symbols["handler"]
        )
        run_to_halt(machine)
        assert machine.halted is HaltReason.TRAPPED
        assert machine.last_trap.vectored is False


class TestStrictTraps:
    def test_strict_mode_raises_with_record(self):
        machine, __ = make_machine(
            "main:\n ldl r26, r0, 0x401\n ret\n nop", strict_traps=True
        )
        with pytest.raises(TrapError) as excinfo:
            run_to_halt(machine)
        assert excinfo.value.record.cause is TrapCause.MISALIGNED_ACCESS
        assert machine.halted is HaltReason.TRAPPED


INTERRUPTIBLE_LOOP = """
main:
    li    r5, 0            ; r5 (global): handler evidence
    getpsw r16
    or    r16, r16, #16    ; enable interrupts
    putpsw r16, #0
loop:
    add   r6, r6, #1
    cmp   r6, #60
    blt   loop
    nop
    mov   r26, r5
    ret
    nop
handler:
    gtlpc r16
    add   r5, r5, #1
    retint r16, 0
    nop
"""


class TestInterruptDelaySlot:
    def test_interrupt_deferred_past_delay_slot(self):
        machine, program = make_machine(INTERRUPTIBLE_LOOP)
        handler = program.symbols["handler"]
        requested = False
        deferred_once = False
        while machine.halted is None:
            if machine._pending_jump and not requested:
                # A taken jump is in flight: the NEXT step is its delay
                # slot.  An interrupt requested now must wait one step.
                machine.request_interrupt(handler)
                requested = True
                machine.step()  # executes the delay slot
                assert machine.interrupts_taken == 0
                assert machine.pending_interrupt == handler
                deferred_once = True
                continue
            machine.step()
        assert deferred_once
        assert machine.interrupts_taken == 1
        assert machine.result == 1  # handler ran exactly once
        assert machine.read_reg(6) == 60  # and the loop still completed

    def test_interrupted_pc_is_resumable(self):
        # The handler resumes via gtlpc/retint; a wrong interrupted-PC
        # would derail the loop and change the final counter.
        machine, program = make_machine(INTERRUPTIBLE_LOOP)
        handler = program.symbols["handler"]
        fired = False
        while machine.halted is None:
            machine.step()
            if not fired and machine.stats.instructions >= 12:
                machine.request_interrupt(handler)
                fired = True
        assert machine.halted is HaltReason.RETURNED
        assert machine.result == 1
        assert machine.read_reg(6) == 60


INFINITE_LOOP = """
main:
loop:
    add r6, r6, #1
    b   loop
    nop
"""


class TestWatchdogs:
    def test_step_limit(self):
        machine, program = make_machine(INFINITE_LOOP)
        machine.run(program.entry, max_steps=500)
        assert machine.halted is HaltReason.STEP_LIMIT
        assert machine.stats.instructions == 500

    def test_cycle_limit(self):
        machine, program = make_machine(INFINITE_LOOP)
        machine.run(program.entry, max_cycles=1000)
        assert machine.halted is HaltReason.CYCLE_LIMIT
        assert machine.stats.cycles >= 1000

    def test_wall_clock_limit(self):
        machine, program = make_machine(INFINITE_LOOP)
        # A deadline already in the past fires at the first 1024-step check.
        machine.run(program.entry, wall_clock_limit=0.0)
        assert machine.halted is HaltReason.WALL_CLOCK_LIMIT
        assert machine.stats.instructions == 1024

    def test_budgets_do_not_fire_on_normal_programs(self):
        machine, program = make_machine("main:\n li r26, 9\n ret\n nop")
        machine.run(program.entry, max_cycles=10_000, wall_clock_limit=30.0)
        assert machine.halted is HaltReason.RETURNED
        assert machine.result == 9
