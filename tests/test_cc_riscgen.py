"""Tests for the RISC I backend: conventions, delay slots, runtime."""

import pytest

from repro.cc import compile_for_risc
from repro.cc.riscgen import AsmLine, fill_delay_slots
from repro.errors import CompileError


class TestGeneratedCode:
    def test_assembles_and_runs(self):
        compiled = compile_for_risc("int main() { return 6 * 7; }")
        value, __ = compiled.run()
        assert value == 42

    def test_runtime_included_only_when_needed(self):
        without = compile_for_risc("int main() { return 1 + 2; }")
        with_mul = compile_for_risc("int main() { int x = 6; return x * 7; }")
        assert "__mul" not in without.asm_source
        assert "__mul" in with_mul.asm_source
        assert "__udivmod" not in with_mul.asm_source

    def test_divider_pulls_in_udivmod(self):
        compiled = compile_for_risc("int main() { int x = 10; return x / 3; }")
        assert "__udivmod" in compiled.asm_source
        assert "__mul" not in compiled.asm_source

    def test_mangled_function_names(self):
        compiled = compile_for_risc("int f() { return 1; } int main() { return f(); }")
        assert "_f:" in compiled.asm_source
        assert "_main:" in compiled.asm_source

    def test_too_many_arguments_rejected(self):
        params = ", ".join(f"int a{i}" for i in range(6))
        args = ", ".join("1" for __ in range(6))
        source = f"int f({params}) {{ return a0; }} int main() {{ return f({args}); }}"
        with pytest.raises(CompileError):
            compile_for_risc(source)

    def test_code_size_positive_and_word_aligned(self):
        compiled = compile_for_risc("int main() { return 3; }")
        assert compiled.code_size_bytes > 0
        assert compiled.code_size_bytes % 4 == 0

    def test_windows_preserve_caller_locals(self):
        source = """
        int clobber() { int a = 1; int b = 2; int c = 3; int d = 4;
                        int e = 5; int f = 6; int g = 7; int h = 8;
                        return a + b + c + d + e + f + g + h; }
        int main() { int x = 11; int y = 22; clobber(); return x * 100 + y; }
        """
        value, __ = compile_for_risc(source).run()
        assert value == 1122

    def test_register_pressure_spills_correctly(self):
        # values derive from a runtime input so the optimizer can't fold
        # them away; all 14 stay live until the final sum
        decls = " ".join(f"int v{i} = seed + {i + 1};" for i in range(14))
        total = " + ".join(f"v{i}" for i in range(14))
        source = (f"int f(int seed) {{ {decls} return {total}; }}"
                  f" int main() {{ return f(100); }}")
        compiled = compile_for_risc(source)
        value, __ = compiled.run()
        assert value == sum(100 + i for i in range(1, 15))
        assert compiled.codegen.spills > 0

    def test_deep_recursion_with_spilled_frames(self):
        source = """
        int down(int n, int acc) {
            int a[4];
            a[0] = n;
            if (n == 0) return acc;
            return down(n - 1, acc + a[0]);
        }
        int main() { return down(30, 0); }
        """
        value, machine = compile_for_risc(source).run()
        assert value == sum(range(1, 31))
        assert machine.stats.window_overflows > 0


class TestDelaySlots:
    def test_fill_reduces_nops(self):
        source = "int main() { int i; int s = 0; for (i = 0; i < 9; i = i + 1) s = s + i; return s; }"
        optimised = compile_for_risc(source, optimize_delay_slots=True)
        plain = compile_for_risc(source, optimize_delay_slots=False)
        assert optimised.codegen.delay_slots_filled > 0
        assert plain.codegen.delay_slots_filled == 0
        value_o, machine_o = optimised.run()
        value_p, machine_p = plain.run()
        assert value_o == value_p
        assert machine_o.stats.cycles < machine_p.stats.cycles

    def test_filler_never_moves_labelled_instruction(self):
        lines = [
            AsmLine("x:", kind="label"),
            AsmLine("    add r16, r16, #1", defs=frozenset([16]), uses=frozenset([16])),
            AsmLine("    b x", kind="branch"),
            AsmLine("    nop", kind="nop"),
        ]
        filled, total, count = fill_delay_slots(lines)
        assert total == 1
        assert count == 0  # candidate is a jump target: must not move

    def test_filler_moves_independent_op(self):
        lines = [
            AsmLine("    add r17, r17, #1", defs=frozenset([17]), uses=frozenset([17])),
            AsmLine("    add r16, r16, #1", defs=frozenset([16]), uses=frozenset([16])),
            AsmLine("    b x", kind="branch"),
            AsmLine("    nop", kind="nop"),
        ]
        filled, total, count = fill_delay_slots(lines)
        assert count == 1
        assert filled[-1].text.strip().startswith("add r16")

    def test_filler_respects_flag_dependency(self):
        lines = [
            AsmLine("    add r16, r16, #1", defs=frozenset([16]), uses=frozenset([16])),
            AsmLine("    cmp r16, #5", uses=frozenset([16]), sets_flags=True),
            AsmLine("    beq x", kind="branch"),
            AsmLine("    nop", kind="nop"),
        ]
        __, total, count = fill_delay_slots(lines)
        assert count == 0  # the cmp reads what the candidate writes

    def test_filler_never_steals_an_occupied_slot(self):
        """Regression: two adjacent branches (an `if` whose body is a
        `continue`/`break` jump) must not let the second branch steal the
        instruction already scheduled into the first branch's slot."""
        lines = [
            AsmLine("    add r21, r23, #1", defs=frozenset([21]), uses=frozenset([23])),
            AsmLine("    mov r23, r21", defs=frozenset([23]), uses=frozenset([21])),
            AsmLine("    cmp r21, #3", uses=frozenset([21]), sets_flags=True),
            AsmLine("    bne around", kind="branch"),
            AsmLine("    nop", kind="nop"),
            AsmLine("    b check", kind="branch"),
            AsmLine("    nop", kind="nop"),
        ]
        filled, total, count = fill_delay_slots(lines)
        assert total == 2
        assert count == 1  # only the first slot may take the mov
        # the mov must sit right after `bne`, and `b`'s slot stays a nop
        texts = [line.text.strip() for line in filled]
        assert texts[texts.index("bne around") + 1] == "mov r23, r21"
        assert texts[texts.index("b check") + 1] == "nop"

    def test_break_continue_in_do_while_compiles_correctly(self):
        """End-to-end pin for the same bug (miscompiled before the fix)."""
        source = """
        int main() {
            int i = 0; int s = 0;
            do {
                i++;
                if (i == 3) continue;
                if (i == 6) break;
                s += i;
            } while (i < 100);
            return s;
        }
        """
        value, machine = compile_for_risc(source).run(max_steps=100_000)
        assert value == 1 + 2 + 4 + 5
        assert machine.halted is not None

    def test_filler_never_moves_wide_li(self):
        """Regression: ``li`` with an immediate outside signed 13 bits
        assembles to two words (ldhi + add); only the first would execute
        in a delay slot, so the filler must leave it alone."""
        def lines(value):
            return [
                AsmLine("    add r17, r17, #1", defs=frozenset([17]), uses=frozenset([17])),
                AsmLine(f"    li r16, {value}", defs=frozenset([16])),
                AsmLine("    b x", kind="branch"),
                AsmLine("    nop", kind="nop"),
            ]
        __, __, count = fill_delay_slots(lines(4095))  # widest one-word li
        assert count == 1
        __, __, count = fill_delay_slots(lines(4104))  # two words: stays put
        assert count == 0

    def test_wide_constant_before_branch_compiles_correctly(self):
        """End-to-end pin for the same bug: a folded constant > 12 bits
        returned after a runtime call landed its ldhi half in the branch
        delay slot and its add half on the not-taken path."""
        source = "int main() { int a = 0; a = 0 / (a | 1); return 57 * 72; }"
        value, machine = compile_for_risc(source).run(max_steps=100_000)
        assert value == 4104

    def test_call_slot_accepts_only_global_registers(self):
        local_op = [
            AsmLine("    add r16, r16, #1", defs=frozenset([16]), uses=frozenset([16])),
            AsmLine("    add r17, r0, #2", defs=frozenset([17])),
            AsmLine("    callr r31, _f", kind="call", defs=frozenset([31])),
            AsmLine("    nop", kind="nop"),
        ]
        __, __, count = fill_delay_slots(local_op)
        assert count == 0
        global_op = [
            AsmLine("    add r16, r16, #1", defs=frozenset([16]), uses=frozenset([16])),
            AsmLine("    add r9, r9, #4", defs=frozenset([9]), uses=frozenset([9])),
            AsmLine("    callr r31, _f", kind="call", defs=frozenset([31])),
            AsmLine("    nop", kind="nop"),
        ]
        __, __, count = fill_delay_slots(global_op)
        assert count == 1


class TestFlatAblation:
    def test_flat_mode_correct_and_slower_on_calls(self):
        source = """
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { int i; int s = 0;
            for (i = 0; i < 50; i = i + 1) s = s + add3(i, s, 1);
            return s; }
        """
        windowed = compile_for_risc(source, use_windows=True)
        flat = compile_for_risc(source, use_windows=False)
        value_w, machine_w = windowed.run()
        value_f, machine_f = flat.run()
        assert value_w == value_f
        assert machine_f.memory.stats.data_refs > machine_w.memory.stats.data_refs

    def test_flat_mode_divide(self):
        source = "int main() { int x = 100; return x / 7 * 1000 + x % 7; }"
        value, __ = compile_for_risc(source, use_windows=False).run()
        assert value == 14002
