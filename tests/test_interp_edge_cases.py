"""Additional edge-case coverage for the interpreter and semantics."""

import pytest

from repro.cc import compile_for_risc
from repro.errors import InterpreterError, SemanticError
from repro.hll import run_program


def both(source: str) -> int:
    expected = run_program(source).value
    value, __ = compile_for_risc(source).run()
    assert value == expected
    return expected


class TestIntegerEdges:
    def test_int_min_negation_wraps(self):
        assert both("int main() { int x = -2147483647 - 1; return -x; }") == -2147483648

    def test_int_min_division_by_minus_one_semantics(self):
        # our dialect defines it as wrapping (no trap), both targets agree
        source = "int main() { int x = -2147483647 - 1; int y = -1; return x / y; }"
        assert both(source) == -2147483648

    def test_shift_by_32_masks_to_zero(self):
        assert both("int main() { int n = 32; return 5 << n; }") == 5
        assert both("int main() { int n = 33; return 8 >> n; }") == 4

    def test_multiplication_wraps(self):
        assert both("int main() { int x = 65536; return x * x; }") == 0

    def test_comparison_chain_values(self):
        assert both("int main() { return (3 < 4) + (4 < 3); }") == 1


class TestScopingEdges:
    def test_inner_shadow_restores_outer(self):
        source = """
        int main() {
            int x = 1;
            { int x = 2; x = x + 1; }
            return x;
        }
        """
        assert both(source) == 1

    def test_for_init_declaration_scoped_to_loop(self):
        source = """
        int main() {
            int total = 0;
            for (int k = 0; k < 3; k++) total += k;
            for (int k = 10; k < 12; k++) total += k;
            return total;
        }
        """
        assert both(source) == 0 + 1 + 2 + 10 + 11

    def test_param_shadowed_by_local_rejected(self):
        with pytest.raises(SemanticError):
            run_program("int f(int a) { int a = 2; return a; } int main() { return f(1); }")


class TestCharEdges:
    def test_char_array_wraparound_byte(self):
        assert both("""
        char c[2];
        int main() { c[0] = 255; c[0] += 1; return c[0]; }
        """) == 0

    def test_char_pointer_into_int_expression(self):
        assert both("""
        char s[4] = "AB";
        int main() { char *p = s; return *p * 256 + *(p + 1); }
        """) == ord("A") * 256 + ord("B")

    def test_escaped_char_local_stored_as_byte(self):
        assert both("""
        int poke(char *p) { *p = 300; return 0; }
        int main() { char c = 0; poke(&c); return c; }
        """) == 300 & 0xFF


class TestRuntimeErrors:
    def test_modulo_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            run_program("int main() { int z = 0; return 5 % z; }")

    def test_deep_recursion_hits_fuel(self):
        with pytest.raises(InterpreterError):
            run_program("int f(int n) { return f(n + 1); } int main() { return f(0); }",
                        max_ops=50_000)


class TestGlobalsEdges:
    def test_global_char_scalar_initializer(self):
        assert both("char c = 'Q'; int main() { return c; }") == ord("Q")

    def test_global_initializer_with_negative(self):
        assert both("int g = -12345; int main() { return g; }") == -12345

    def test_global_array_partially_initialized(self):
        assert both("int a[5] = {1, 2}; int main() { return a[1] + a[4]; }") == 2

    def test_many_globals_layout(self):
        decls = "\n".join(f"int g{i} = {i};" for i in range(20))
        total = " + ".join(f"g{i}" for i in range(20))
        assert both(f"{decls}\nint main() {{ return {total}; }}") == sum(range(20))
