"""Tests for the Mini-C reference interpreter."""

import pytest

from repro.errors import InterpreterError
from repro.hll import run_program


def result(source: str, **kwargs) -> int:
    return run_program(source, **kwargs).value


class TestArithmetic:
    def test_basic(self):
        assert result("int main() { return 2 + 3 * 4 - 1; }") == 13

    def test_division_truncates_toward_zero(self):
        assert result("int main() { return -7 / 2; }") == -3
        assert result("int main() { return 7 / -2; }") == -3
        assert result("int main() { return -7 % 2; }") == -1
        assert result("int main() { return 7 % -2; }") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            result("int main() { int z = 0; return 1 / z; }")

    def test_32bit_wrapping(self):
        assert result("int main() { return 2147483647 + 1; }") == -2147483648

    def test_shifts(self):
        assert result("int main() { return 1 << 4; }") == 16
        assert result("int main() { int x = -8; return x >> 2; }") == -2

    def test_bitwise(self):
        assert result("int main() { return (12 & 10) | (1 ^ 3); }") == 10

    def test_unary(self):
        assert result("int main() { return ~0; }") == -1
        assert result("int main() { return !5; }") == 0
        assert result("int main() { return !0; }") == 1


class TestControlFlow:
    def test_if_else_chains(self):
        source = """
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else return 1;
        }
        int main() { return classify(-5) * 100 + classify(0) * 10 + classify(9); }
        """
        assert result(source) == -99  # -1*100 + 0*10 + 1

    def test_while_and_break_continue(self):
        source = """
        int main() {
            int i = 0; int s = 0;
            while (i < 100) {
                i = i + 1;
                if (i % 2 == 0) continue;
                if (i > 9) break;
                s = s + i;
            }
            return s;
        }
        """
        assert result(source) == 1 + 3 + 5 + 7 + 9

    def test_for_continue_still_steps(self):
        source = """
        int main() {
            int i; int s = 0;
            for (i = 0; i < 5; i = i + 1) { if (i == 2) continue; s = s + i; }
            return s;
        }
        """
        assert result(source) == 0 + 1 + 3 + 4

    def test_short_circuit_evaluation(self):
        source = """
        int g;
        int bump() { g = g + 1; return 1; }
        int main() { g = 0; int x = 0 && bump(); int y = 1 || bump(); return g; }
        """
        assert result(source) == 0

    def test_nested_loops(self):
        source = """
        int main() {
            int i; int j; int s = 0;
            for (i = 0; i < 4; i = i + 1)
                for (j = 0; j < 4; j = j + 1)
                    s = s + i * j;
            return s;
        }
        """
        assert result(source) == 36


class TestFunctions:
    def test_recursion(self):
        assert result(
            "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }"
            "int main() { return fact(7); }"
        ) == 5040

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        """
        source = """
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(10); }
        """
        assert result(source) == 10

    def test_void_function_returns_zero(self):
        assert result("int f() { } int main() { return f(); }") == 0

    def test_missing_return_yields_zero(self):
        assert result("int f(int x) { x = x + 1; } int main() { return f(1); }") == 0

    def test_fuel_limit(self):
        with pytest.raises(InterpreterError):
            result("int main() { while (1) {} return 0; }", max_ops=1000)


class TestPointersAndArrays:
    def test_pointer_write_through(self):
        assert result(
            "int set(int *p, int v) { *p = v; return 0; }"
            "int main() { int x = 0; set(&x, 77); return x; }"
        ) == 77

    def test_pointer_arithmetic_scales(self):
        source = """
        int a[4] = {10, 20, 30, 40};
        int main() { int *p = a; p = p + 2; return *p; }
        """
        assert result(source) == 30

    def test_pointer_difference(self):
        source = """
        int a[8];
        int main() { int *p = a + 6; int *q = a + 2; return p - q; }
        """
        assert result(source) == 4

    def test_char_pointer_arithmetic_is_bytewise(self):
        source = """
        char s[8] = "abcdef";
        int main() { char *p = s; p = p + 3; return *p; }
        """
        assert result(source) == ord("d")

    def test_array_passed_to_function(self):
        source = """
        int first(int *a) { return a[0]; }
        int a[3] = {9, 8, 7};
        int main() { return first(a); }
        """
        assert result(source) == 9

    def test_local_array_zeroed(self):
        assert result("int main() { int a[4]; return a[3]; }") == 0

    def test_char_array_stores_bytes(self):
        source = """
        char s[4];
        int main() { s[0] = 300; return s[0]; }
        """
        assert result(source) == 300 & 0xFF

    def test_global_scalar_init(self):
        assert result("int g = 42; int main() { return g; }") == 42

    def test_global_mutation_visible_across_calls(self):
        source = """
        int g;
        int inc() { g = g + 1; return g; }
        int main() { inc(); inc(); return inc(); }
        """
        assert result(source) == 3

    def test_matrix_via_flat_array(self):
        source = """
        int m[12];
        int at(int r, int c) { return m[r * 4 + c]; }
        int main() {
            int r; int c;
            for (r = 0; r < 3; r = r + 1)
                for (c = 0; c < 4; c = c + 1)
                    m[r * 4 + c] = r * 10 + c;
            return at(2, 3);
        }
        """
        assert result(source) == 23


class TestOpCounting:
    def test_counts_calls_and_loops(self):
        outcome = run_program(
            "int f() { return 1; }"
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 5; i = i + 1) s = s + f(); return s; }"
        )
        assert outcome.op_counts["call"] == 6  # main + 5x f
        assert outcome.op_counts["loop"] == 5
        assert outcome.op_counts["assign"] >= 7
