"""Multicore platform tests: device semantics, MMIO faults, scheduling.

Four layers:

* :class:`~repro.multicore.device.PlatformDevice` register semantics
  in isolation (test-and-set locks, one-shot timer, doorbell routing,
  cause/ack protocol, read-only/write-only behaviour, latency samples);
* MMIO through :class:`~repro.common.memory.Memory` (word-only access,
  unmapped-window faults trapping precisely on a machine);
* interrupt delivery on a single core (taken at a step boundary,
  **never between a delayed jump and its delay slot** - the regression
  that distinguishes a precise interrupt from a corrupted one);
* the :class:`~repro.multicore.simulator.MulticoreSimulator` itself:
  byte-identical determinism of the composed manifest, schedule
  sensitivity to the quantum, cross-core self-modifying-code
  invalidation on the block tier, lock-contention liveness under the
  watchdog, and scenario invariants across core counts.
"""

import json

import pytest

from repro import RiscMachine, assemble
from repro.common.memory import Memory
from repro.cpu.machine import HaltReason, TrapCause
from repro.errors import MemoryFaultError
from repro.multicore import (
    MMIO_BASE,
    NUM_LOCKS,
    MulticoreSimulator,
    PlatformDevice,
    build_scenario,
    register_address,
    register_table,
    run_scenario,
    scenario,
    scenario_names,
    tick_mailbox_address,
)
from repro.multicore.device import CAUSE_DOORBELL, CAUSE_TIMER


class _IdleCore:
    """Stand-in for ArchState in device-only tests."""

    def __init__(self):
        self.pending_interrupt = None
        self.requests = []

    def request_interrupt(self, handler):
        self.pending_interrupt = handler
        self.requests.append(handler)


class TestPlatformDevice:
    def test_identity_registers(self):
        device = PlatformDevice(3)
        device.active_core = 2
        assert device.read(register_address("CORE_ID")) == 2
        assert device.read(register_address("NUM_CORES")) == 3

    def test_lock_load_is_test_and_set(self):
        device = PlatformDevice(2)
        addr = register_address("LOCK", 3)
        assert device.read(addr) == 0  # acquired
        assert device.read(addr) == 1  # contended
        assert device.read(addr) == 1
        device.write(addr, 0)  # release
        assert device.read(addr) == 0  # reacquired
        assert device.lock_acquires == 2
        assert device.lock_misses == 2

    def test_lock_bank_cells_are_independent(self):
        device = PlatformDevice(1)
        assert device.read(register_address("LOCK", 0)) == 0
        for index in range(1, NUM_LOCKS):
            assert device.read(register_address("LOCK", index)) == 0
        assert device.read(register_address("LOCK", 0)) == 1

    def test_timer_is_one_shot_and_boundary_sampled(self):
        device = PlatformDevice(1)
        core = _IdleCore()
        device.write(register_address("TIMER_COMPARE"), 500)
        assert device.steps_until_timer(0, 100) == 400
        device.service(0, 499, core)
        assert device.irq_cause[0] == 0  # not due yet
        device.service(0, 500, core)
        assert device.irq_cause[0] & CAUSE_TIMER
        assert device.timer_compare[0] == 0  # disarmed
        assert device.timer_fires == 1
        # TIMER_COUNT reads the boundary-cached count, never mid-slice.
        assert device.read(register_address("TIMER_COUNT")) == 500

    def test_ack_clears_cause_and_closes_latency_sample(self):
        device = PlatformDevice(1)
        core = _IdleCore()
        device.write(register_address("TIMER_COMPARE"), 100)
        device.service(0, 100, core)  # fires, opens latency
        device.write(register_address("IRQ_ACK"), CAUSE_TIMER)
        assert device.irq_cause[0] == 0
        device.service(0, 260, core)  # next boundary closes the sample
        assert device.latency_samples == [160]

    def test_doorbell_routes_to_target_core(self):
        device = PlatformDevice(4)
        device.active_core = 0
        device.write(register_address("DOORBELL"), 2)
        assert device.irq_cause[2] == CAUSE_DOORBELL
        assert device.irq_cause[0] == 0
        assert device.pending_causes(2) == [TrapCause.DOORBELL_INTERRUPT]
        device.write(register_address("DOORBELL"), 99)  # ignored
        assert device.doorbell_rings == 1

    def test_delivery_needs_cause_and_vector_and_free_latch(self):
        device = PlatformDevice(1)
        core = _IdleCore()
        device.irq_cause[0] = CAUSE_TIMER
        device.service(0, 10, core)
        assert core.pending_interrupt is None  # no vector installed
        device.irq_vector[0] = 0x400
        device.service(0, 20, core)
        assert core.pending_interrupt == 0x400
        device.service(0, 30, core)  # latch occupied: no double delivery
        assert core.requests == [0x400]
        assert device.interrupts_delivered == 1

    def test_write_only_registers_read_zero(self):
        device = PlatformDevice(1)
        for name in ("IRQ_ACK", "DOORBELL", "CONSOLE"):
            assert device.read(register_address(name)) == 0

    def test_read_only_registers_ignore_writes(self):
        device = PlatformDevice(1)
        device.write(register_address("CORE_ID"), 7)
        device.write(register_address("TIMER_COUNT"), 7)
        assert device.read(register_address("CORE_ID")) == 0

    def test_console_register_collects_text(self):
        device = PlatformDevice(1)
        for ch in "ok":
            device.write(register_address("CONSOLE"), ord(ch))
        assert "".join(device.console) == "ok"

    def test_unmapped_offset_faults(self):
        device = PlatformDevice(1)
        with pytest.raises(MemoryFaultError):
            device.read(MMIO_BASE + 0x44)
        with pytest.raises(MemoryFaultError):
            device.write(MMIO_BASE + 0x44, 1)

    def test_register_table_covers_every_register(self):
        table = register_table()
        for name in ("CORE_ID", "TIMER_COMPARE", "IRQ_ACK", "LOCK0", "CONSOLE"):
            assert name in table


class TestMemoryMmio:
    def _memory(self, device):
        memory = Memory(size=1 << 20)
        memory.map_mmio(device)
        return memory

    def test_word_access_routes_to_device(self):
        device = PlatformDevice(2)
        memory = self._memory(device)
        assert memory.load_word(register_address("NUM_CORES")) == 2
        memory.store_word(register_address("TIMER_COMPARE"), 123)
        assert device.timer_compare[0] == 123

    def test_sub_word_access_faults(self):
        memory = self._memory(PlatformDevice(1))
        with pytest.raises(MemoryFaultError) as info:
            memory.load_byte(register_address("CORE_ID"))
        assert info.value.kind == "mmio_width"
        with pytest.raises(MemoryFaultError):
            memory.store_half(register_address("TIMER_COMPARE"), 1)

    def test_unmap_restores_plain_ram(self):
        device = PlatformDevice(1)
        memory = self._memory(device)
        memory.map_mmio(None)
        memory.store_word(register_address("TIMER_COMPARE"), 7)
        assert memory.load_word(register_address("TIMER_COMPARE")) == 7
        assert device.timer_compare[0] == 0

    def test_sub_word_mmio_access_traps_precisely(self):
        # Every word-aligned in-window offset is a register, so the
        # reachable guest-visible fault is the width restriction: a
        # byte load from the window must trap, not read a stale byte.
        source = f"""
        main:
            li   r16, {MMIO_BASE}
            ldbu r17, r16, 0
            ret
            nop
        """
        program = assemble(source)
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.memory.map_mmio(PlatformDevice(1))
        machine.run(program.entry)
        assert machine.halted is HaltReason.TRAPPED
        assert machine.trap_log[-1].cause is TrapCause.OUT_OF_RANGE_ACCESS


#: A handler that just resumes: proves the gtlpc/retint round trip.
_RESUME_HANDLER = """
__h:
    gtlpc r17
    add   r5, r5, #1
    retint r17, 0
    nop
"""

_DELAY_SLOT_VICTIM = f"""
main:
    add  r1, r0, #1
    jmpr alw, target
    add  r2, r0, #2      ; delay slot
target:
    add  r3, r0, #3
    ret
    nop
{_RESUME_HANDLER}
"""


class TestInterruptDelivery:
    def _machine(self):
        program = assemble(_DELAY_SLOT_VICTIM)
        machine = RiscMachine()
        program.load_into(machine.memory)
        machine.reset(program.entry)
        machine.psw.interrupts_enabled = True
        return machine, program

    def _step(self, machine, n=1):
        machine.engine.run_loop(machine, n, None, None)
        if machine.halted is HaltReason.STEP_LIMIT:
            machine.halted = None

    def test_interrupt_not_taken_in_delay_slot(self):
        machine, program = self._machine()
        handler = program.symbols["__h"]
        self._step(machine, 2)  # add + taken jmpr: delay slot is next
        assert machine._pending_jump
        machine.request_interrupt(handler)
        self._step(machine, 1)  # delay slot must execute first
        assert machine.read_reg(2) == 2
        assert machine.pending_interrupt == handler  # still latched
        assert machine.interrupts_taken == 0
        self._step(machine, 1)  # next boundary: now it is taken
        assert machine.interrupts_taken == 1
        assert machine.pending_interrupt is None
        # gtlpc (already executed as the handler's first instruction)
        # captured the interrupted pc: the jump target.
        assert machine.read_reg(17) == program.symbols["target"]

    def test_interrupted_program_resumes_and_completes(self):
        machine, program = self._machine()
        self._step(machine, 2)
        machine.request_interrupt(program.symbols["__h"])
        machine.engine.run_loop(machine, 100, None, None)
        assert machine.halted is HaltReason.RETURNED
        assert machine.read_reg(5) == 1  # handler ran once
        assert machine.interrupts_taken == 1

    def test_interrupt_held_while_disabled(self):
        machine, program = self._machine()
        machine.psw.interrupts_enabled = False
        machine.request_interrupt(program.symbols["__h"])
        machine.engine.run_loop(machine, 100, None, None)
        assert machine.halted is HaltReason.RETURNED
        assert machine.interrupts_taken == 0
        assert machine.pending_interrupt == program.symbols["__h"]


# Core 1 runs `body` once (compiling it on the block tier), signals
# core 0 through `flag1`, and waits; core 0 then patches the head of
# `body` (changing `li r16, 1` into `li r16, 42`) and releases core 1
# through `flag2`; core 1 re-executes the patched body.  The cross-core
# store must invalidate core 1's compiled block: r20 = 1 + 42 = 43.
_CROSS_CORE_SMC = f"""
_main:
    li   r18, {MMIO_BASE}
    ldl  r19, r18, 0       ; CORE_ID
    cmp  r19, #0
    beq  core0
    nop
    li   r20, 0
body:
    li   r16, 1            ; <- patched by core 0
    add  r20, r20, r16
    ldl  r17, r0, flag1
    cmp  r17, #0
    bne  second
    nop
    li   r17, 1
    stl  r17, r0, flag1
wait2:
    ldl  r17, r0, flag2
    cmp  r17, #0
    beq  wait2
    nop
    jmpr alw, body
    nop
second:
    mov  r26, r20
    ret
    nop
core0:
wait1:
    ldl  r17, r0, flag1
    cmp  r17, #0
    beq  wait1
    nop
    ldl  r16, r0, donor
    stl  r16, r0, body
    li   r17, 1
    stl  r17, r0, flag2
    li   r26, 7
    ret
    nop
donor:
    li   r16, 42
flag1:
    .word 0
flag2:
    .word 0
"""


class TestMulticoreSimulator:
    def test_rejects_non_smp_engines(self):
        program = build_scenario("barrier")
        for engine in ("trace", "batch"):
            with pytest.raises(ValueError):
                MulticoreSimulator(program, num_cores=2, engine=engine)

    def test_manifest_is_byte_identical_across_runs(self):
        first = run_scenario("producer_consumer", num_cores=2)
        second = run_scenario("producer_consumer", num_cores=2)
        a = json.dumps(first.manifest(workload="pc", seed=1), sort_keys=True)
        b = json.dumps(second.manifest(workload="pc", seed=1), sort_keys=True)
        assert a == b

    def test_quantum_changes_schedule_not_results(self):
        coarse = run_scenario("barrier", num_cores=2, quantum=200)
        fine = run_scenario("barrier", num_cores=2, quantum=64)
        assert coarse.schedule_fingerprint() != fine.schedule_fingerprint()
        assert coarse.results == fine.results
        assert not scenario("barrier").validate(fine.results, 2)

    def test_cross_core_smc_invalidation(self):
        program = assemble(_CROSS_CORE_SMC)
        outcomes = {}
        for engine in ("reference", "block"):
            sim = MulticoreSimulator(
                program, num_cores=2, engine=engine, handler_symbol=None
            ).run(100_000)
            assert [c.halted for c in sim.cores] == [HaltReason.RETURNED] * 2
            outcomes[engine] = (sim.results, sim.schedule_fingerprint())
        assert outcomes["reference"][0] == [7, 43]
        assert outcomes["block"] == outcomes["reference"]

    def test_watchdog_preserves_liveness_under_contention(self):
        # Far too small a budget for the 4-core producer/consumer run:
        # the watchdog must land rather than the lock spin hanging us.
        sim = run_scenario(
            "producer_consumer", num_cores=4, max_total_steps=2_000
        )
        assert sim.watchdog_expired
        assert all(core.halted is not None for core in sim.cores)
        assert sim.manifest(workload="pc")["schedule"]["watchdog_expired"]

    def test_utilization_sums_to_one(self):
        sim = run_scenario("barrier", num_cores=4)
        shares = sim.utilization()
        assert len(shares) == 4
        assert abs(sum(shares) - 1.0) < 1e-9

    def test_handler_ticks_land_in_mailboxes(self):
        sim = run_scenario("timer_ticks", num_cores=2)
        for core_id in range(2):
            ticks = sim.memory.load_word(tick_mailbox_address(core_id))
            assert ticks == 4
        assert sim.device.interrupts_delivered == 8

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("num_cores", [1, 2, 4])
    def test_scenario_invariants_hold(self, name, num_cores):
        sim = run_scenario(name, num_cores=num_cores)
        assert not sim.watchdog_expired
        assert all(c.halted is HaltReason.RETURNED for c in sim.cores)
        assert scenario(name).validate(sim.results, num_cores) == []
