"""Differential testing: interpreter == RISC I == every CISC baseline.

The core correctness property of the whole reproduction: a Mini-C
program produces the same result through the reference interpreter, the
compiled RISC I image (with and without windows / delay-slot filling),
and the generic-CISC images for all four baseline machines.  Hypothesis
generates random straight-line programs on top of the curated cases.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import ALL_TRAITS, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.hll import run_program

CASES = [
    "int main() { return 0; }",
    "int main() { return -2147483647 - 1; }",
    "int main() { int x = -2147483647 - 1; return x / 2; }",
    "int main() { int x = -2147483647 - 1; return x % 4; }",
    "int main() { int a = 13; int b = -5; return a / b * 1000 + a % b; }",
    "int main() { int i; int s = 0; for (i = 0; i < 17; i = i + 1) s = s ^ (s + i); return s; }",
    "int main() { int x = 1; int y = 2; int z = 3; return (x < y) + (y < z) * 2 + (z < x) * 4; }",
    "int main() { int x = 0 - 12; return (x >> 2) + (x << 2); }",
    "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); } int main() { return fact(10); }",
    "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }"
    " int main() { return gcd(462, 1071); }",
    "int a[16]; int rev(int n) { int i; for (i = 0; i < n; i = i + 1) a[i] = n - i;"
    " return 0; } int main() { rev(16); return a[0] * 100 + a[15]; }",
    "char buf[32]; int main() { int i; for (i = 0; i < 26; i = i + 1) buf[i] = 'a' + i;"
    " return buf[25] * 256 + buf[0]; }",
    "int swap(int *x, int *y) { int t = *x; *x = *y; *y = t; return 0; }"
    " int main() { int a = 3; int b = 9; swap(&a, &b); return a * 10 + b; }",
    "int main() { int depth = 0; int i; for (i = 0; i < 3; i = i + 1) {"
    " int j; for (j = 0; j < 3; j = j + 1) { depth = depth + i * j; } } return depth; }",
    "int deep(int n) { if (n == 0) return 0; return deep(n - 1) + 1; }"
    " int main() { return deep(40); }",  # forces window overflow (depth > 8)
]


def all_targets(source: str) -> dict[str, int]:
    """Run *source* everywhere; returns {target: result}."""
    results = {"interp": run_program(source, max_ops=20_000_000).value}
    for use_windows in (True, False):
        for optimize in (True, False):
            key = f"risc(w={int(use_windows)},opt={int(optimize)})"
            compiled = compile_for_risc(source, use_windows=use_windows,
                                        optimize_delay_slots=optimize)
            results[key], __ = compiled.run()
    ir = compile_to_ir(source)
    for traits in ALL_TRAITS:
        generated = compile_for_cisc(ir, traits)
        executor = CiscExecutor(generated.program, traits)
        results[traits.name] = executor.run()
    return results


@pytest.mark.parametrize("source", CASES, ids=range(len(CASES)))
def test_curated_cases_agree_everywhere(source):
    results = all_targets(source)
    expected = results.pop("interp")
    for target, value in results.items():
        assert value == expected, f"{target}: {value} != {expected}\n{source}"


# -- hypothesis: random expression programs ------------------------------------


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.one_of(
            st.integers(-100, 100).map(str),
            st.sampled_from(["a", "b", "c"]),
        ))
        return leaf
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                               "/", "%", "<", "==", ">"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if op in ("/", "%"):
        right = f"(({right}) | 1)"  # never zero
    if op in ("<<", ">>"):
        right = f"(({right}) & 7)"  # sane shift counts
    return f"(({left}) {op} ({right}))"


@st.composite
def programs(draw):
    statements = ["int a = %d;" % draw(st.integers(-50, 50)),
                  "int b = %d;" % draw(st.integers(-50, 50)),
                  "int c = %d;" % draw(st.integers(1, 50))]
    for __ in range(draw(st.integers(1, 4))):
        target = draw(st.sampled_from(["a", "b", "c"]))
        statements.append(f"{target} = {draw(expressions())};")
    statements.append(f"return {draw(expressions())};")
    return "int main() { %s }" % " ".join(statements)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_random_programs_interp_vs_risc(source):
    expected = run_program(source, max_ops=5_000_000).value
    compiled = compile_for_risc(source)
    got, __ = compiled.run()
    assert got == expected, source


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_random_programs_interp_vs_vax_model(source):
    from repro.baselines import VaxTraits

    expected = run_program(source, max_ops=5_000_000).value
    generated = compile_for_cisc(compile_to_ir(source), VaxTraits())
    executor = CiscExecutor(generated.program, VaxTraits())
    assert executor.run() == expected, source


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 16), programs())
def test_window_count_never_changes_results(num_windows, source):
    expected = run_program(source, max_ops=5_000_000).value
    compiled = compile_for_risc(source)
    got, __ = compiled.run(num_windows=num_windows)
    assert got == expected
