"""Execution-service behaviour: scheduler, HTTP stack, chaos.

Covers the service guarantees the docs promise: single-flight
deduplication (N identical concurrent submissions -> exactly one
simulation), byte-identical warm responses, per-tenant rate limiting,
deadline preemption (and the never-cache rule for wall-clock halts),
and worker-death survival (SIGKILL mid-job -> pool rebuild -> every
in-flight session still answered).  The HTTP tests drive a real TCP
port through :func:`repro.service.server.serve_in_thread` and the
blocking :class:`repro.service.client.ServiceClient`.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.service.jobs import JobError, JobSpec
from repro.service.scheduler import (
    ExecutionScheduler,
    RateLimitedError,
    TokenBucket,
)
from repro.service.server import serve_in_thread
from repro.service.client import ServiceClient
from repro.service.loadgen import job_stream, run_load
from repro.service.store import ManifestStore

# Small and fast on every engine.
SOURCE = """
int main(void) {
    int total;
    int index;
    total = 0;
    for (index = 0; index < 25; index = index + 1) {
        total = total + index;
    }
    return total;
}
"""

# ~1s on the reference engine: long enough to SIGKILL mid-run.
SLOW_SOURCE = """
int main(void) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 20000; i = i + 1) {
        acc = acc + i;
    }
    return acc;
}
"""


def _run(coro):
    return asyncio.run(coro)


def _counter(scheduler, name):
    metric = scheduler.registry.as_dict().get(f"service.{name}")
    return 0 if metric is None else metric["value"]


# -- scheduler semantics -----------------------------------------------------


def test_single_flight_collapses_identical_submissions(tmp_path):
    """N concurrent identical jobs -> exactly one simulation."""
    store = ManifestStore(str(tmp_path))
    scheduler = ExecutionScheduler(store=store, workers=2)
    job = JobSpec(workload="adhoc", source=SOURCE, engine="reference")

    async def _submit_many():
        try:
            return await asyncio.gather(
                *[scheduler.submit(job) for _ in range(8)]
            )
        finally:
            scheduler.shutdown()

    results = _run(_submit_many())
    assert len(results) == 8
    assert sorted(r.cache for r in results) == ["coalesced"] * 7 + ["miss"]
    assert len({r.manifest.fingerprint() for r in results}) == 1
    assert _counter(scheduler, "cache_misses") == 1  # one simulation
    assert _counter(scheduler, "single_flight") == 7
    assert store.stats()["stores"] == 1


def test_warm_submission_is_a_byte_identical_hit(tmp_path):
    scheduler = ExecutionScheduler(
        store=ManifestStore(str(tmp_path)), workers=1
    )
    job = JobSpec(workload="adhoc", source=SOURCE, engine="reference")

    async def _twice():
        try:
            first = await scheduler.submit(job)
            second = await scheduler.submit(job)
            return first, second
        finally:
            scheduler.shutdown()

    first, second = _run(_twice())
    assert (first.cache, second.cache) == ("miss", "hit")
    assert second.manifest.canonical_json() == first.manifest.canonical_json()
    assert second.manifest.fingerprint() == first.manifest.fingerprint()
    assert first.manifest.result == 300  # sum(range(25))


def test_bad_source_is_a_job_error_not_a_retry(tmp_path):
    scheduler = ExecutionScheduler(store=None, workers=1)
    job = JobSpec(workload="adhoc", source="int main(void) { returns 1 }")

    async def _submit():
        try:
            await scheduler.submit(job)
        finally:
            scheduler.shutdown()

    with pytest.raises(JobError):
        _run(_submit())
    assert _counter(scheduler, "job_errors") == 1
    assert _counter(scheduler, "retries") == 0  # client fault, no retry


def test_deadline_preemption_is_never_cached(tmp_path):
    """A wall-clock-preempted run answers but must not poison the store."""
    store = ManifestStore(str(tmp_path))
    scheduler = ExecutionScheduler(
        store=store, workers=1, deadline_s=0.05
    )
    job = JobSpec(
        workload="adhoc", source=SLOW_SOURCE, engine="reference"
    )

    async def _submit():
        try:
            return await scheduler.submit(job)
        finally:
            scheduler.shutdown()

    result = _run(_submit())
    assert result.preempted
    assert result.manifest.halt == "WALL_CLOCK_LIMIT"
    assert store.entry_count() == 0  # host-dependent halt: uncacheable
    assert _counter(scheduler, "preempted") == 1


def test_step_limit_preemption_is_deterministic_and_cached(tmp_path):
    """STEP_LIMIT halts are pure functions of the inputs: cacheable."""
    store = ManifestStore(str(tmp_path))
    scheduler = ExecutionScheduler(store=store, workers=1, deadline_s=None)
    job = JobSpec(
        workload="adhoc", source=SLOW_SOURCE, engine="reference",
        max_steps=5000,
    )

    async def _twice():
        try:
            return (await scheduler.submit(job), await scheduler.submit(job))
        finally:
            scheduler.shutdown()

    first, second = _run(_twice())
    assert first.manifest.halt == "STEP_LIMIT"
    assert first.preempted and second.preempted
    assert (first.cache, second.cache) == ("miss", "hit")
    assert second.manifest.fingerprint() == first.manifest.fingerprint()


def test_rate_limit_rejects_over_burst():
    scheduler = ExecutionScheduler(
        store=None, workers=1, rate=0.001, burst=2
    )
    job = JobSpec(workload="adhoc", source=SOURCE, engine="reference")

    async def _burst():
        try:
            await scheduler.submit(job, tenant="greedy")
            await scheduler.submit(job, tenant="greedy")
            with pytest.raises(RateLimitedError) as info:
                await scheduler.submit(job, tenant="greedy")
            assert info.value.retry_after_s > 0
            # Buckets are per tenant: another tenant is unaffected.
            await scheduler.submit(job, tenant="patient")
        finally:
            scheduler.shutdown()

    _run(_burst())
    assert _counter(scheduler, "rate_limited") == 1


def test_token_bucket_refills_with_time():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.retry_after_s() == pytest.approx(0.5)
    now[0] += 0.6  # 1.2 tokens refilled
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_worker_sigkill_mid_job_answers_every_session(tmp_path):
    """Chaos: SIGKILL a pool worker mid-simulation.

    The pool breaks for every in-flight future; the scheduler rebuilds
    it once and retries each job, so all sessions still answer (the
    acceptance criterion for worker-death survival).
    """
    store = ManifestStore(str(tmp_path))
    scheduler = ExecutionScheduler(store=store, workers=2, deadline_s=30.0)
    jobs = [
        JobSpec(workload="adhoc", source=SLOW_SOURCE, engine="reference",
                seed=seed)
        for seed in range(4)
    ]

    async def _chaos():
        async def _kill_soon():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pids = scheduler.worker_pids()
                if pids:
                    await asyncio.sleep(0.3)  # let jobs reach the workers
                    os.kill(pids[0], signal.SIGKILL)
                    return
                await asyncio.sleep(0.01)
            raise AssertionError("pool never started")

        try:
            results, _ = await asyncio.gather(
                asyncio.gather(*[scheduler.submit(job) for job in jobs]),
                _kill_soon(),
            )
            return results
        finally:
            scheduler.shutdown()

    results = _run(_chaos())
    assert len(results) == 4
    assert all(r.manifest.halt == "RETURNED" for r in results)
    # Distinct seeds -> distinct keys -> four stored entries.
    assert store.entry_count() == 4
    assert _counter(scheduler, "pool_restarts") >= 1
    assert _counter(scheduler, "retries") >= 1


def test_batch_engine_coalesces_lanes_bit_identical_to_scalar(tmp_path):
    """Same-workload batch jobs run as one lockstep call, scalar-identical."""
    pytest.importorskip("numpy")
    store = ManifestStore(str(tmp_path))
    scheduler = ExecutionScheduler(store=store, workers=1, coalesce_s=0.05)
    jobs = [
        JobSpec(workload="adhoc", source=SOURCE, engine="batch", seed=seed)
        for seed in range(3)
    ]
    scalar = JobSpec(workload="adhoc", source=SOURCE, engine="reference",
                     seed=0)

    async def _submit_all():
        try:
            batched = await asyncio.gather(
                *[scheduler.submit(job) for job in jobs]
            )
            reference = await scheduler.submit(scalar)
            return batched, reference
        finally:
            scheduler.shutdown()

    batched, reference = _run(_submit_all())
    assert all(r.manifest.engine == "batch" for r in batched)
    assert _counter(scheduler, "batched_jobs") == 3
    # Lane 0 shares the scalar run's inputs: identical shared sections,
    # and the store keeps both engines' sections under one key.
    assert batched[0].manifest.fingerprint() == reference.manifest.fingerprint()
    assert reference.cache == "miss"  # engine section absent until now
    assert store.engines(jobs[0].key()) == ("batch", "reference")


# -- HTTP end to end ---------------------------------------------------------


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("manifest-store")
    handle = serve_in_thread(
        store=ManifestStore(str(store_dir)), workers=2
    )
    yield handle
    handle.stop()


def test_http_cold_then_warm_is_fingerprint_identical(service):
    with ServiceClient("127.0.0.1", service.port) as client:
        status, cold = client.submit(
            {"source": SOURCE, "engine": "reference", "seed": 11}
        )
        assert status == 200 and cold["cache"] == "miss"
        status, warm = client.submit(
            {"source": SOURCE, "engine": "reference", "seed": 11}
        )
    assert status == 200 and warm["cache"] == "hit"
    assert warm["fingerprint"] == cold["fingerprint"]
    assert warm["manifest"] == cold["manifest"]  # byte-identical payload
    assert warm["key"] == cold["key"]


def test_http_benchmark_job_and_auto_engine(service):
    with ServiceClient("127.0.0.1", service.port) as client:
        status, doc = client.submit({"workload": "towers"})
    assert status == 200
    assert doc["manifest"]["run"]["workload"] == "towers"
    assert doc["manifest"]["run"]["result"] == 1023  # 2**10 - 1 moves
    assert doc["engine"] != "auto"  # resolved to a concrete tier


def test_http_rejects_malformed_jobs(service):
    with ServiceClient("127.0.0.1", service.port) as client:
        status, doc = client.submit({"workload": "no-such-benchmark"})
        assert status == 400 and "unknown workload" in doc["error"]
        status, doc = client.submit({"source": "int main(void) { ?! }"})
        assert status == 400
        status, doc = client.request("GET", "/v1/nowhere")
        assert status == 404
        status, doc = client.request("PUT", "/v1/jobs")
        assert status == 405


def test_http_healthz_stats_engines(service):
    with ServiceClient("127.0.0.1", service.port) as client:
        health = client.healthz()
        assert health["ok"]
        stats = client.stats()
        assert stats["store"]["stores"] >= 1
        assert any(
            name.startswith("service.") for name in stats["metrics"]
        )
        status, engines = client.request("GET", "/v1/engines")
        assert status == 200
        names = {row["name"] for row in engines["engines"]}
        assert {"reference", "fast"} <= names


def test_http_rate_limited_tenant_gets_429():
    handle = serve_in_thread(store=None, workers=1, rate=0.001, burst=1)
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            status, _ = client.submit(
                {"source": SOURCE, "engine": "reference"}, tenant="noisy"
            )
            assert status == 200
            status, doc = client.submit(
                {"source": SOURCE, "engine": "reference"}, tenant="noisy"
            )
            assert status == 429
            assert doc["retry_after_s"] > 0
    finally:
        handle.stop()


def test_http_concurrent_load_mixed_cold_warm(service):
    """The loadgen harness against a live server: all 200s, warmth seen."""
    jobs = job_stream(
        workload="towers", engine="reference", unique=2, repeats=3,
        seed_base=100,
    )
    report = run_load("127.0.0.1", service.port, jobs, clients=3)
    assert report.requests == 6
    assert report.errors == 0
    assert set(report.by_status) == {200}
    served = sum(report.by_cache.values())
    assert served == 6
    # 2 unique seeds -> exactly 2 simulations; the rest were warm.
    warm = report.by_cache.get("hit", 0) + report.by_cache.get("coalesced", 0)
    assert warm == 4


# -- run_all --store reuse (satellite) ---------------------------------------


def test_run_all_manifest_reuses_store(tmp_path):
    from repro.evaluation.run_all import write_manifest

    store_dir = str(tmp_path / "store")
    out1, out2 = str(tmp_path / "m1.json"), str(tmp_path / "m2.json")
    names = ("towers",)
    write_manifest(out1, names, engine="fast", store=store_dir)

    # Preload proof: the store now answers the exact service job key.
    spec = JobSpec(
        workload="towers",
        source=__import__("repro.workloads", fromlist=["benchmark"])
        .benchmark("towers").source,
    )
    store = ManifestStore(store_dir)
    assert store.get(spec.key(), "fast") is not None

    # mtimes unchanged across the second run -> no re-simulation.
    paths = {}
    for root, _dirs, files in os.walk(store_dir):
        for name in files:
            path = os.path.join(root, name)
            paths[path] = os.stat(path).st_mtime_ns
    write_manifest(out2, names, engine="fast", store=store_dir)
    for path, mtime in paths.items():
        assert os.stat(path).st_mtime_ns == mtime
    with open(out1, "rb") as a, open(out2, "rb") as b:
        assert a.read() == b.read()
