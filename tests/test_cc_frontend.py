"""Tests for AST -> IR lowering and the linear-scan register allocator."""

import pytest

from repro.cc import compile_to_ir
from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    SymRef,
    Temp,
    negate_relop,
    swap_relop,
)
from repro.cc.regalloc import compute_intervals, linear_scan


def ir_for(source: str, func: str = "main"):
    # optimize=False: these tests inspect the *lowering* output; the
    # optimizer's own behaviour is covered by test_cc_optimize.
    return compile_to_ir(source, optimize=False).functions[func]


def ops_of(func, kind):
    return [ins for ins in func.body if isinstance(ins, kind)]


class TestLoweringBasics:
    def test_constant_fold(self):
        func = ir_for("int main() { return 2 + 3 * 4; }")
        rets = ops_of(func, Ret)
        assert rets[0].value == Const(14)

    def test_locals_become_temps(self):
        func = ir_for("int main() { int x = 5; return x; }")
        moves = ops_of(func, Move)
        assert any(move.src == Const(5) for move in moves)
        assert not func.frame_slots

    def test_arrays_get_frame_slots(self):
        func = ir_for("int main() { int a[4]; return a[0]; }")
        assert len(func.frame_slots) == 1
        assert func.frame_slots[0].size == 16

    def test_escaped_scalar_gets_slot(self):
        func = ir_for("int main() { int x = 1; int *p = &x; return *p; }")
        assert len(func.frame_slots) == 1

    def test_globals_are_symrefs(self):
        program = compile_to_ir("int g = 3; int main() { return g; }")
        loads = ops_of(program.functions["main"], Load)
        assert isinstance(loads[0].addr, SymRef)
        assert loads[0].addr.scope == "global"

    def test_word_indexing_scales_by_shift(self):
        func = ir_for("int a[8]; int main() { int i = 2; return a[i]; }")
        shifts = [ins for ins in ops_of(func, Bin) if ins.op == "<<"]
        assert shifts and shifts[0].b == Const(2)

    def test_char_indexing_not_scaled(self):
        func = ir_for("char s[8]; int main() { int i = 2; return s[i]; }")
        assert not any(ins.op == "<<" for ins in ops_of(func, Bin))
        loads = ops_of(func, Load)
        assert loads[-1].size == 1

    def test_call_lowering(self):
        func = ir_for("int f(int a) { return a; } int main() { return f(7); }")
        calls = ops_of(func, Call)
        assert calls[0].func == "f"
        assert calls[0].args == [Const(7)]

    def test_fall_off_end_returns_zero(self):
        func = ir_for("int main() { int x = 1; }")
        assert ops_of(func, Ret)[-1].value == Const(0)


class TestStrengthReduction:
    def test_multiply_by_power_of_two(self):
        func = ir_for("int main() { int x = 3; return x * 8; }")
        assert any(ins.op == "<<" for ins in ops_of(func, Bin))
        assert not any(ins.op == "*" for ins in ops_of(func, Bin))

    def test_divide_by_power_of_two(self):
        func = ir_for("int main() { int x = 100; return x / 4; }")
        assert not any(ins.op == "/" for ins in ops_of(func, Bin))
        assert any(ins.op == ">>>" for ins in ops_of(func, Bin))

    def test_modulo_by_power_of_two(self):
        func = ir_for("int main() { int x = 100; return x % 8; }")
        assert not any(ins.op == "%" for ins in ops_of(func, Bin))

    def test_general_divide_survives(self):
        func = ir_for("int main() { int x = 100; return x / 3; }")
        assert any(ins.op == "/" for ins in ops_of(func, Bin))

    def test_multiply_by_one_is_move(self):
        func = ir_for("int main() { int x = 9; return x * 1; }")
        assert not any(ins.op in ("*", "<<") for ins in ops_of(func, Bin))


class TestControlFlowLowering:
    def test_if_produces_cjump(self):
        func = ir_for("int main() { int x = 1; if (x < 2) return 1; return 0; }")
        cjumps = ops_of(func, CJump)
        assert cjumps[0].relop == ">="  # negated to jump around the then-branch

    def test_while_produces_back_edge(self):
        func = ir_for("int main() { int i = 0; while (i < 3) i = i + 1; return i; }")
        labels = {ins.name: idx for idx, ins in enumerate(func.body)
                  if isinstance(ins, Label)}
        jumps = ops_of(func, Jump)
        assert any(labels.get(j.target, 1 << 30) < func.body.index(j) for j in jumps)

    def test_short_circuit_produces_no_boolcmp_in_condition(self):
        func = ir_for(
            "int main() { int a = 1; int b = 2; if (a < 2 && b > 1) return 3; return 4; }"
        )
        assert len(ops_of(func, CJump)) == 2
        assert not ops_of(func, BoolCmp)

    def test_comparison_as_value_uses_boolcmp(self):
        func = ir_for("int main() { int a = 1; int x = a < 2; return x; }")
        assert len(ops_of(func, BoolCmp)) == 1


class TestRelopHelpers:
    def test_negate_is_involution(self):
        for relop in ("==", "!=", "<", "<=", ">", ">=", "ltu", "leu", "gtu", "geu"):
            assert negate_relop(negate_relop(relop)) == relop

    def test_swap_is_involution(self):
        for relop in ("==", "!=", "<", "<=", ">", ">=", "ltu", "leu", "gtu", "geu"):
            assert swap_relop(swap_relop(relop)) == relop


class TestRegalloc:
    def test_small_function_fits_in_registers(self):
        func = ir_for("int main() { int a = 1; int b = 2; return a + b; }")
        alloc = linear_scan(func, list(range(16, 24)))
        assert not alloc.spills

    def test_pressure_causes_spills(self):
        decls = "".join(f"int v{i} = {i};" for i in range(12))
        total = " + ".join(f"v{i}" for i in range(12))
        func = ir_for(f"int main() {{ {decls} return {total}; }}")
        alloc = linear_scan(func, [16, 17, 18])
        assert alloc.spills

    def test_intervals_cover_loop_bodies(self):
        func = ir_for(
            "int main() { int s = 0; int i; for (i = 0; i < 9; i = i + 1)"
            " s = s + i; return s; }"
        )
        intervals = {iv.temp_index: iv for iv in compute_intervals(func)}
        # every temp used inside the loop must live across the back edge
        back_edges = [idx for idx, ins in enumerate(func.body)
                      if isinstance(ins, Jump)]
        assert back_edges
        loop_end = max(back_edges)
        loop_temps = [iv for iv in intervals.values()
                      if iv.start < loop_end <= iv.end]
        assert loop_temps

    def test_distinct_registers_for_overlapping_lives(self):
        func = ir_for("int main() { int a = 1; int b = 2; int c = a + b; return c + a + b; }")
        alloc = linear_scan(func, list(range(16, 24)))
        # a and b are simultaneously live; they must not share a register
        regs = list(alloc.registers.values())
        assert len(regs) == len(set(regs)) or not alloc.spills


class TestMmioBuiltins:
    def test_mmio_read_lowers_to_volatile_load(self):
        func = ir_for("int main() { return mmio_read(987136); }")
        loads = ops_of(func, Load)
        assert loads and loads[0].volatile
        assert loads[0].addr == Const(987136)

    def test_plain_loads_are_not_volatile(self):
        program = compile_to_ir("int g; int main() { return g; }")
        loads = ops_of(program.functions["main"], Load)
        assert loads and not loads[0].volatile

    def test_mmio_write_lowers_to_store(self):
        func = ir_for("int main() { mmio_write(987148, 7); return 0; }")
        stores = ops_of(func, Store)
        assert len(stores) == 1
        assert stores[0].addr == Const(987148)
        assert stores[0].src == Const(7)

    def test_mmio_builtins_compose_in_expressions(self):
        func = ir_for(
            "int main() { return mmio_read(987144) + mmio_read(987148); }"
        )
        assert len([l for l in ops_of(func, Load) if l.volatile]) == 2

    def test_user_definition_overrides_the_builtin(self):
        source = """
        int mmio_read(int a) { return a + 1; }
        int main() { return mmio_read(41); }
        """
        func = ir_for(source)
        calls = ops_of(func, Call)
        assert calls and calls[0].func == "mmio_read"
        assert not ops_of(func, Load)
