"""Tests for the trace-driven register-window analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.windows import (
    overlap_traffic,
    simulate_windows,
    sweep_overlap,
    sweep_window_counts,
)
from repro.workloads import synthetic_call_trace


def nest(depth):
    """Trace: descend to *depth*, come back up."""
    return [1] * depth + [-1] * depth


class TestSimulateWindows:
    def test_shallow_trace_never_traps(self):
        result = simulate_windows(nest(5), 8)
        assert result.overflows == 0
        assert result.underflows == 0
        assert result.max_depth == 5

    def test_deep_nest_traps(self):
        # capacity is N-1 frames, one of which is the initial environment,
        # so the first 6 nested calls are free and the rest trap.
        result = simulate_windows(nest(20), 8)
        assert result.overflows == 20 - 6
        assert result.underflows == result.overflows

    def test_two_windows_trap_on_every_nested_call(self):
        result = simulate_windows(nest(10), 2)
        assert result.overflows == 10

    def test_oscillation_at_boundary_is_absorbed(self):
        # Hovering at the capacity boundary does NOT thrash: after one
        # spill the file has a frame of slack, so call/return pairs at
        # the same depth stop trapping - the hysteresis the paper relies on.
        trace = [1] * 7 + [1, -1] * 10 + [-1] * 7
        result = simulate_windows(trace, 8)
        assert result.overflows == 2
        assert result.underflows == 2

    def test_spill_words(self):
        result = simulate_windows(nest(9), 8)
        assert result.spill_words == (result.overflows + result.underflows) * 16

    def test_overflow_rate(self):
        result = simulate_windows(nest(14), 8)
        assert result.overflow_rate == pytest.approx(8 / 14)

    def test_empty_trace(self):
        result = simulate_windows([], 8)
        assert result.calls == 0
        assert result.overflow_rate == 0.0

    def test_unbalanced_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_windows([-1], 8)

    def test_bad_event_rejected(self):
        with pytest.raises(ValueError):
            simulate_windows([2], 8)

    def test_single_window_rejected(self):
        with pytest.raises(ValueError):
            simulate_windows(nest(3), 1)

    @given(st.integers(2, 16), st.integers(0, 200))
    def test_overflows_equal_underflows_on_balanced_traces(self, windows, depth):
        result = simulate_windows(nest(depth), windows)
        assert result.overflows == result.underflows

    @given(st.integers(0, 2000))
    def test_more_windows_never_more_overflows(self, seed):
        trace = synthetic_call_trace(500, seed=seed)
        small = simulate_windows(trace, 4)
        large = simulate_windows(trace, 8)
        assert large.overflows <= small.overflows


class TestSweeps:
    def test_window_sweep_is_monotone(self):
        trace = synthetic_call_trace(5000, locality=0.6)
        sweep = sweep_window_counts(trace)
        rates = [sweep[count].overflows for count in sorted(sweep)]
        assert rates == sorted(rates, reverse=True)

    def test_overlap_sweep_has_interior_minimum_on_real_traces(self):
        trace = synthetic_call_trace(5000, locality=0.7)
        sweep = sweep_overlap(trace)
        # zero overlap pays for argument copies; it must never be best
        assert sweep[0] > min(sweep.values())

    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            overlap_traffic(nest(3), overlap=11)

    def test_conventional_machine_traffic_reference(self):
        result = simulate_windows(nest(6), 8)
        assert result.data_refs_without_windows == (6 + 6) * 8
        assert result.data_refs_with_windows == 0


class TestSyntheticTraces:
    def test_trace_balances(self):
        trace = synthetic_call_trace(1000)
        assert sum(trace) == 0

    def test_deterministic_for_seed(self):
        assert synthetic_call_trace(100, seed=5) == synthetic_call_trace(100, seed=5)

    def test_locality_reduces_depth_excursions(self):
        wild = simulate_windows(synthetic_call_trace(5000, locality=0.5), 8)
        tame = simulate_windows(synthetic_call_trace(5000, locality=0.9), 8)
        assert tame.overflows < wild.overflows

    def test_bad_locality_rejected(self):
        with pytest.raises(ValueError):
            synthetic_call_trace(10, locality=1.5)
