"""Structured differential fuzzing: random programs with control flow.

Goes beyond the straight-line generator in test_cc_differential by
generating whole functions with arrays, bounded loops, conditionals, and
helper-function calls - the constructs most likely to expose codegen
bugs (window clobbering, delay-slot illegality, spilled-temp aliasing).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import Pdp11Traits, Z8002Traits, CiscExecutor
from repro.cc import compile_for_risc, compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.hll import run_program

VARS = ["a", "b", "c"]


@st.composite
def simple_exprs(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(st.one_of(
            st.integers(-30, 30).map(str),
            st.sampled_from(VARS),
            st.sampled_from(["g[0]", "g[1]", "g[i & 7]"]),
        ))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left = draw(simple_exprs(depth=depth + 1))
    right = draw(simple_exprs(depth=depth + 1))
    return f"(({left}) {op} ({right}))"


@st.composite
def statements(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "array", "if", "loop", "call"] if depth < 2 else ["assign", "array"]
    ))
    if kind == "assign":
        return f"{draw(st.sampled_from(VARS))} = {draw(simple_exprs())};"
    if kind == "array":
        return f"g[i & 7] = {draw(simple_exprs())};"
    if kind == "if":
        cond = f"{draw(st.sampled_from(VARS))} {draw(st.sampled_from(['<', '>', '==', '!=']))} {draw(st.integers(-10, 10))}"
        then = draw(statements(depth=depth + 1))
        if draw(st.booleans()):
            other = draw(statements(depth=depth + 1))
            return f"if ({cond}) {{ {then} }} else {{ {other} }}"
        return f"if ({cond}) {{ {then} }}"
    if kind == "loop":
        # distinct induction variable per nesting depth, or the loops
        # would reset each other and never terminate
        var = ["i", "j"][depth]
        body = draw(statements(depth=depth + 1))
        bound = draw(st.integers(1, 6))
        return (f"for ({var} = 0; {var} < {bound}; {var} = {var} + 1) {{ {body} }}")
    # call
    args = ", ".join(draw(simple_exprs()) for __ in range(2))
    return f"{draw(st.sampled_from(VARS))} = helper({args});"


@st.composite
def structured_programs(draw):
    body = " ".join(draw(statements()) for __ in range(draw(st.integers(2, 5))))
    return f"""
int g[8];
int helper(int x, int y) {{
    if (x > y) return x - y;
    return x + y + g[0];
}}
int main() {{
    int a = {draw(st.integers(-20, 20))};
    int b = {draw(st.integers(-20, 20))};
    int c = {draw(st.integers(-20, 20))};
    int i = 0;
    int j = 0;
    {body}
    return a + b * 3 + c * 5 + g[2];
}}
"""


COMMON_SETTINGS = dict(deadline=None,
                       suppress_health_check=[HealthCheck.too_slow,
                                              HealthCheck.data_too_large])


@settings(max_examples=25, **COMMON_SETTINGS)
@given(structured_programs())
def test_structured_interp_vs_risc(source):
    expected = run_program(source, max_ops=2_000_000).value
    value, __ = compile_for_risc(source).run()
    assert value == expected, source


@settings(max_examples=10, **COMMON_SETTINGS)
@given(structured_programs())
def test_structured_interp_vs_risc_flat(source):
    expected = run_program(source, max_ops=2_000_000).value
    value, __ = compile_for_risc(source, use_windows=False).run()
    assert value == expected, source


@settings(max_examples=10, **COMMON_SETTINGS)
@given(structured_programs())
def test_structured_interp_vs_small_register_machines(source):
    """PDP-11 (3 allocatable regs) stresses the CISC spill paths."""
    expected = run_program(source, max_ops=2_000_000).value
    ir = compile_to_ir(source)
    for traits in (Pdp11Traits(), Z8002Traits()):
        generated = compile_for_cisc(ir, traits)
        executor = CiscExecutor(generated.program, traits)
        assert executor.run() == expected, (traits.name, source)
