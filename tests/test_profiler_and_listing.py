"""Tests for the per-function profiler, listings, and the ISA doc generator."""

from repro import RiscMachine, assemble
from repro.cc import compile_for_risc
from repro.cpu.profiler import Profiler, function_symbols
from repro.isa.docs import (
    aliases_table,
    condition_table,
    instruction_table,
    register_map,
    render_reference,
)


class TestProfiler:
    SOURCE = """
    int slow(int n) { int i; int s = 0; for (i = 0; i < n; i = i + 1) s = s + i; return s; }
    int fast(int n) { return n + 1; }
    int main() {
        int total = 0;
        total = total + slow(200);
        total = total + fast(1);
        return total;
    }
    """

    def profile(self):
        compiled = compile_for_risc(self.SOURCE)
        machine = compiled.make_machine()
        profiler = Profiler(machine, function_symbols(compiled.program.symbols))
        profiler.run(compiled.program.entry)
        return profiler

    def test_function_symbols_filter(self):
        compiled = compile_for_risc(self.SOURCE)
        names = set(function_symbols(compiled.program.symbols))
        assert {"main", "_main", "_slow", "_fast"} <= names
        assert not any(name.startswith("L0") for name in names)
        assert not any(name.startswith("__epi") for name in names)

    def test_hot_function_dominates(self):
        profiler = self.profile()
        hotspots = profiler.hotspots()
        assert hotspots[0].name == "_slow"

    def test_call_counts(self):
        profiler = self.profile()
        by_name = {p.name: p for p in profiler.hotspots()}
        assert by_name["_slow"].calls == 1
        assert by_name["_fast"].calls == 1

    def test_cycles_attributed_completely(self):
        profiler = self.profile()
        machine_cycles = profiler.machine.stats.cycles
        attributed = sum(p.cycles for p in profiler.profiles)
        assert attributed == machine_cycles

    def test_report_format(self):
        report = self.profile().report()
        assert "_slow" in report
        assert "%" in report

    def test_data_symbols_show_no_instructions(self):
        program = assemble("main:\n ret\n nop\ndata:\n .word 1, 2, 3")
        machine = RiscMachine()
        program.load_into(machine.memory)
        profiler = Profiler(machine, dict(program.symbols))
        profiler.run(program.entry)
        names = [p.name for p in profiler.hotspots()]
        assert "data" not in names


class TestListing:
    def test_listing_contains_symbols_and_lines(self):
        program = assemble("main:\n add r1, r2, r3\nloop:\n b loop\n nop")
        listing = program.listing()
        assert "main:" in listing
        assert "loop:" in listing
        assert "add r1, r2, r3" in listing
        assert "; line 2" in listing

    def test_listing_survives_data_words(self):
        program = assemble("main:\n ret\n nop\n .word 0xFFFFFFFF")
        listing = program.listing()
        assert ".word" in listing or "0xffffffff" in listing.lower()


class TestIsaDocs:
    def test_instruction_table_has_all_31(self):
        table = instruction_table()
        assert table.count("| `") == 31

    def test_register_map_mentions_138(self):
        assert "138" in register_map()

    def test_condition_table_has_16_entries(self):
        assert condition_table().count("| `") == 16

    def test_aliases(self):
        table = aliases_table()
        assert "`sp`" in table and "`ra`" in table

    def test_full_reference_renders(self):
        text = render_reference()
        assert text.startswith("# RISC I instruction-set reference")
        for section in ("## Instructions", "## Registers", "## Jump conditions"):
            assert section in text
