"""Unit tests for the macro-op fusion analyzer and its CLI surface.

Engine-side behaviour (fused execution, de-fusion, equivalence) lives in
``tests/test_fusion_engines.py``; this file covers the static side:
idiom detection, legality-proof rejections, the report schema, lint
integration, and the hardened baseline/--only CLI paths.
"""

import json

import pytest

from repro import RiscMachine, assemble
from repro.analysis.fusion import (
    FUSION_KINDS,
    FUSION_SCHEMA,
    analyze_program,
    arm_machine,
)
from repro.analysis.lint import main as lint_main
from repro.analysis.lints import LINT_CATALOG, lint_program


def report_for(source: str, name: str = "test"):
    return analyze_program(assemble(source), name=name)


LI_PAIR = """
main:
    li   r16, 0x123456
    mov  r26, r16
    ret
    nop
"""

CMP_BRANCH = """
main:
    li   r16, 3
    cmp  r16, #0
    bgt  skip
    nop
    add  r16, r16, #1
skip:
    mov  r26, r16
    ret
    nop
"""

CALL_SLOT = """
main:
    callr r31, fn
    li   r10, 7
    mov  r26, r16
    ret
    nop
fn:
    mov  r16, r10
    ret
    nop
"""

LOAD_OP_DEAD = """
main:
    li   r15, 0x9000
    stl  r15, r15, 0
    ldl  r16, r15, 0
    add  r17, r16, #1
    mov  r26, r17
    ret
    nop
"""

LOAD_OP_LIVE = """
main:
    li   r15, 0x9000
    ldl  r16, r15, 0
    add  r17, r16, #1
    add  r18, r16, #2
    mov  r26, r17
    ret
    nop
"""

OP_STORE_DEAD = """
main:
    li   r15, 0x9000
    add  r16, r15, #1
    stl  r16, r15, 0
    mov  r26, r0
    ret
    nop
"""

STATIC_SMC = """
main:
    ldl  r16, r0, donor
    stl  r16, r0, target
    nop
target:
    li   r26, 0x123456
    ret
    nop
donor:
    li   r16, 42
"""


class TestIdiomDetection:
    def test_two_word_li(self):
        report = report_for(LI_PAIR)
        assert [pair.kind for pair in report.pairs] == ["li"]
        pair = report.pairs[0]
        assert pair.second == pair.first + 4
        assert pair.lint == "FUS001"

    def test_cmp_branch(self):
        report = report_for(CMP_BRANCH)
        assert "cmp-branch" in {pair.kind for pair in report.pairs}

    def test_call_slot(self):
        report = report_for(CALL_SLOT)
        kinds = {pair.kind for pair in report.pairs}
        assert "call-slot" in kinds
        slot_pair = next(p for p in report.pairs if p.kind == "call-slot")
        assert slot_pair.proof["own_delay_slot"] is True

    def test_load_op_with_dead_intermediate(self):
        report = report_for(LOAD_OP_DEAD)
        pair = next(p for p in report.pairs if p.kind == "load-op")
        assert pair.intermediate == 16
        assert pair.proof["intermediate_dead"] is not None

    def test_op_store_with_dead_intermediate(self):
        report = report_for(OP_STORE_DEAD)
        assert "op-store" in {pair.kind for pair in report.pairs}


class TestLegalityRejections:
    def test_live_intermediate_rejected(self):
        report = report_for(LOAD_OP_LIVE)
        assert "load-op" not in {pair.kind for pair in report.pairs}
        reasons = [c.reason for c in report.rejected if c.kind == "load-op"]
        assert reasons and "live" in reasons[0]

    def test_statically_self_modified_rejected(self):
        report = report_for(STATIC_SMC)
        assert not report.pairs
        reasons = [c.reason for c in report.rejected]
        assert any("self-modifying" in reason for reason in reasons)

    def test_every_pair_is_proved(self):
        # The proof dict is part of the contract the engines rely on.
        for source in (LI_PAIR, CMP_BRANCH, CALL_SLOT, LOAD_OP_DEAD):
            for pair in report_for(source).pairs:
                assert pair.proof["adjacent"] is True
                assert pair.proof["intra_block"] is True
                assert pair.proof["self_modifying"] is False


class TestReportSchema:
    def test_schema_and_summary_shape(self):
        report = report_for(LI_PAIR, name="li_pair")
        data = report.as_dict()
        assert data["schema"] == FUSION_SCHEMA == "repro.fusion/v1"
        assert data["program"] == "li_pair"
        summary = data["summary"]
        assert set(summary) == {
            "program", "pairs", "rejected", "by_kind", "static_cycles_saved",
        }
        for entry in data["pairs"]:
            assert set(entry) >= {
                "kind", "first", "second", "word1", "word2",
                "intermediate", "cycles_saved", "proof",
            }
        json.loads(report.to_json())  # round-trips

    def test_kind_to_lint_mapping_is_in_catalog(self):
        catalog_ids = {lint_id for lint_id, __, __ in LINT_CATALOG}
        for kind, lint_id in FUSION_KINDS.items():
            assert lint_id in catalog_ids, (kind, lint_id)


class TestLintIntegration:
    def test_fus_notes_and_summary(self):
        report = lint_program(assemble(LI_PAIR), name="li_pair")
        assert not report.findings  # FUS lints are notes, never findings
        fus = [note for note in report.notes if note.lint.startswith("FUS")]
        assert [note.lint for note in fus] == ["FUS001"]
        summary = report.summary()["fusion"]
        assert summary["pairs"] == 1
        assert summary["by_kind"] == {"li": 1}

    def test_rejected_candidates_surface_as_fus006(self):
        report = lint_program(assemble(STATIC_SMC), name="smc")
        assert any(note.lint == "FUS006" for note in report.notes)


class TestArmMachine:
    def test_arms_fusion_capable_engine(self):
        program = assemble(LI_PAIR)
        machine = RiscMachine(engine="fast")
        program.load_into(machine.memory)
        report = arm_machine(machine, program)
        assert machine.engine.telemetry_snapshot()["fused_pairs_armed"] == len(
            report.pairs
        )
        machine.run(program.entry)
        assert machine.engine.fused_dispatches == 1

    def test_reference_engine_stays_unfused_oracle(self):
        program = assemble(LI_PAIR)
        machine = RiscMachine(engine="reference")
        program.load_into(machine.memory)
        report = arm_machine(machine, program)  # no arm_fusion: a no-op
        assert report.pairs
        assert not hasattr(machine.engine, "fused_dispatches")


class TestLintCli:
    def test_only_family_filters_notes(self, capsys):
        assert lint_main(["towers", "--only", "FUS"]) == 0
        out = capsys.readouterr().out
        assert "FUS00" in out
        assert "WD001" not in out

    def test_only_unknown_family_lists_known(self, capsys):
        assert lint_main(["towers", "--only", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert "families:" in err and "FUS" in err

    def test_only_incompatible_with_baseline(self, capsys):
        code = lint_main(
            ["--all", "--only", "FUS", "--baseline", "ci/lint_baseline.json"]
        )
        assert code == 2
        assert "--only" in capsys.readouterr().err

    def test_unknown_baseline_code_fails_clearly(self, tmp_path, capsys):
        stale = {
            "towers": {
                "findings": 0, "errors": 0, "warnings": 0,
                "by_lint": {"ZZ999": 1}, "depth_bound": None, "fusion": None,
            }
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(stale))
        assert lint_main(["towers", "--baseline", str(path)]) == 1
        err = capsys.readouterr().err
        assert "unknown or retired lint code 'ZZ999'" in err
        assert "--write-baseline" in err

    def test_committed_baseline_is_fresh(self):
        assert lint_main(
            ["--all", "--extended", "--baseline", "ci/lint_baseline.json"]
        ) == 0


@pytest.mark.parametrize("kind,lint_id", sorted(FUSION_KINDS.items()))
def test_catalog_covers_every_kind(kind, lint_id):
    assert lint_id.startswith("FUS")
