"""Tests for the lint catalog (repro.analysis.lints) and its wiring."""

import json

import pytest

from repro.analysis import Severity, lint_program
from repro.asm import assemble
from repro.asm.linker import LinkError, assemble_module, link
from repro.cc import compile_for_risc
from repro.errors import CompileError
from repro.workloads import BENCHMARKS, benchmark
from repro.workloads.extended import EXTENDED_BENCHMARKS


def lint_source(source: str, **kwargs):
    return lint_program(assemble(source), **kwargs)


def lint_ids(report):
    return {f.lint for f in report.findings}


class TestDelaySlotLints:
    def test_ds002_flags_torn_wide_li(self):
        # The PR 1 miscompile shape: a two-word ``li`` pseudo whose ldhi
        # half sits in a call's delay slot while the add half strands at
        # the fall-through address.  Hand-split here because the
        # assembler itself now rejects the pseudo form.
        report = lint_source("""
main:
    callr r31, f
    ldhi r5, 244
    add r5, r5, #576
    ret
    nop
f:
    ret
    nop
""")
        ds002 = [f for f in report.findings if f.lint == "DS002"]
        assert len(ds002) == 1
        assert ds002[0].severity is Severity.ERROR
        assert "torn" in ds002[0].message

    def test_ds001_flags_transfer_in_slot(self):
        report = lint_source("""
main:
    b out
    b out
out:
    ret
    nop
""")
        assert "DS001" in lint_ids(report)

    def test_ds005_flags_window_register_in_call_slot(self):
        report = lint_source("""
main:
    callr r31, f
    add r16, r0, #1
    ret
    nop
f:
    ret
    nop
""")
        ds005 = [f for f in report.findings if f.lint == "DS005"]
        assert ds005 and "r16" in ds005[0].message

    def test_global_only_call_slot_is_clean(self):
        report = lint_source("""
main:
    callr r31, f
    add r5, r0, #1
    ret
    nop
f:
    ret
    nop
""")
        assert "DS005" not in lint_ids(report)


class TestDataflowLints:
    def test_uu002_read_of_never_written_local(self):
        report = lint_source("""
main:
    add r1, r16, #1
    ret
    nop
""")
        uu = [f for f in report.findings if f.lint == "UU002"]
        assert uu and uu[0].severity is Severity.ERROR
        assert "r16" in uu[0].message

    def test_uu001_read_initialized_on_one_path_only(self):
        report = lint_source("""
main:
    sub r0, r1, #0
    beq skip
    nop
    add r16, r0, #5
skip:
    add r2, r16, #1
    ret
    nop
""")
        uu = [f for f in report.findings if f.lint in ("UU001", "UU002")]
        assert uu and uu[0].lint == "UU001"  # defined on the fall path

    def test_entry_registers_are_defined(self):
        # Globals and the incoming HIGH block need no initialization.
        report = lint_source("""
main:
    add r1, r5, r26
    ret
    nop
""")
        assert not {"UU001", "UU002"} & lint_ids(report)

    def test_dc001_dead_pure_store(self):
        report = lint_source("""
main:
    add r16, r0, #5
    ret
    nop
""")
        dc = [f for f in report.findings if f.lint == "DC001"]
        assert dc and "r16" in dc[0].message

    def test_store_to_memory_is_never_dead(self):
        report = lint_source("""
main:
    add r16, r0, #5
    stl r16, r0, 0x100
    ret
    nop
""")
        assert "DC001" not in lint_ids(report)


class TestStructuralLints:
    def test_ur001_needs_text_markers(self):
        body = """
main:
    ret
    nop
    add r1, r0, #1
"""
        unmarked = lint_source(body)
        assert "UR001" not in lint_ids(unmarked)
        marked = lint_source("__text_start:" + body + "__text_end:\n")
        ur = [f for f in marked.findings if f.lint == "UR001"]
        assert len(ur) == 1 and "1 instruction word" in ur[0].message

    def test_cf001_target_out_of_image(self):
        report = lint_source("""
main:
    b 0x4000
    nop
""")
        assert "CF001" in lint_ids(report)

    def test_wd001_note_reports_bound(self):
        report = lint_source("""
main:
    callr r31, f
    nop
    ret
    nop
f:
    ret
    nop
""")
        assert not report.findings
        notes = {f.lint for f in report.notes}
        assert "WD001" in notes
        assert report.depth.depth_bound == 2

    def test_wd001_escalates_past_max_depth(self):
        report = lint_source("""
main:
    callr r31, f
    nop
    ret
    nop
f:
    ret
    nop
""", max_depth=1)
        wd = [f for f in report.findings if f.lint == "WD001"]
        assert wd and wd[0].severity is Severity.WARNING


class TestReportRendering:
    def test_text_and_json_agree(self):
        report = lint_source("""
main:
    add r1, r16, #1
    ret
    nop
""", name="crafted")
        text = report.to_text()
        assert "crafted" in text and "UU002" in text
        payload = json.loads(report.to_json())
        assert payload["program"] == "crafted"
        assert payload["errors"] == len(report.errors)
        assert any(f["lint"] == "UU002" for f in payload["finding_list"])


class TestCompilerOutputIsClean:
    @pytest.mark.parametrize(
        "bench",
        list(BENCHMARKS) + list(EXTENDED_BENCHMARKS),
        ids=lambda bench: bench.name,
    )
    def test_zero_findings_on_bundled_workloads(self, bench):
        compiled = compile_for_risc(bench.source)
        report = compiled.analyze(name=bench.name)
        assert report.findings == [], report.to_text()

    def test_compile_with_verify_passes(self):
        compiled = compile_for_risc(benchmark("f_bit_test").source, verify=True)
        assert compiled.program.size > 0

    def test_verify_raises_on_bad_binary(self, monkeypatch):
        # Feed the verify gate a binary with the PR 1 torn-li shape by
        # substituting the assembled image (codegen itself can no longer
        # produce one - the assembler rejects the pseudo form).
        from repro.cc import compiler as cc_compiler

        torn = assemble("""
main:
    callr r31, f
    ldhi r5, 244
    add r5, r5, #576
    ret
    nop
f:
    ret
    nop
""")
        monkeypatch.setattr(cc_compiler, "assemble", lambda source: torn)
        with pytest.raises(CompileError, match="DS002"):
            compile_for_risc("int main(void) { return 0; }", verify=True)


class TestLinkerVerify:
    def test_link_verify_rejects_errors(self):
        module = assemble_module("""
main:
    add r1, r16, #1
    ret
    nop
""", name="bad")
        with pytest.raises(LinkError, match="static analysis"):
            link([module], verify=True)

    def test_link_verify_accepts_clean_module(self):
        module = assemble_module("""
main:
    add r1, r5, #1
    ret
    nop
""", name="good")
        program = link([module], verify=True)
        assert program.entry == 0


class TestCli:
    def test_json_report_and_exit_zero(self, capsys):
        from repro.analysis.lint import main

        code = main(["fib_iter", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "fib_iter"
        assert payload["findings"] == 0

    def test_asm_file_with_findings_exits_one(self, tmp_path, capsys):
        from repro.analysis.lint import main

        bad = tmp_path / "bad.s"
        bad.write_text("main:\n    add r1, r16, #1\n    ret\n    nop\n")
        code = main(["--asm", str(bad)])
        assert code == 1
        assert "UU002" in capsys.readouterr().out

    def test_baseline_write_then_check(self, tmp_path, capsys):
        from repro.analysis.lint import main

        baseline = tmp_path / "baseline.json"
        assert main(["fib_iter", "--write-baseline", str(baseline)]) == 0
        assert main(["fib_iter", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # A drifted baseline is a failure with a diff on stderr.
        payload = json.loads(baseline.read_text())
        payload["fib_iter"]["findings"] = 7
        baseline.write_text(json.dumps(payload))
        assert main(["fib_iter", "--baseline", str(baseline)]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_unknown_workload_is_usage_error(self):
        from repro.analysis.lint import main

        with pytest.raises(SystemExit):
            main(["not_a_workload"])


class TestEvaluationSection:
    def test_s1_table_consistency(self):
        from repro.evaluation import s1_static_analysis

        table = s1_static_analysis.run(("f_bit_test", "towers"))
        rendered = table.render()
        assert "S1" in rendered
        assert table.column("consistent") == ["OK", "OK"]
        assert table.column("findings") == [0, 0]
