"""Tests for the JSON export of the benchmark matrix."""

import json

from repro.evaluation.common import FAST_SUBSET
from repro.evaluation.export import export_json, matrix_as_records


class TestExport:
    def test_records_shape(self):
        rows = matrix_as_records(FAST_SUBSET)
        assert len(rows) == len(FAST_SUBSET) * 5  # RISC I + 4 baselines
        sample = rows[0]
        for key in ("benchmark", "machine", "code_bytes", "cycles",
                    "data_refs", "time_ms", "result"):
            assert key in sample

    def test_call_trace_not_exported(self):
        rows = matrix_as_records(FAST_SUBSET)
        assert all("call_trace" not in row for row in rows)

    def test_json_file_roundtrip(self, tmp_path):
        path = tmp_path / "matrix.json"
        count = export_json(str(path), FAST_SUBSET)
        payload = json.loads(path.read_text())
        assert payload["schema"].startswith("risc1-repro/")
        assert len(payload["records"]) == count

    def test_results_agree_across_machines(self):
        rows = matrix_as_records(FAST_SUBSET)
        by_bench = {}
        for row in rows:
            by_bench.setdefault(row["benchmark"], set()).add(row["result"])
        assert all(len(values) == 1 for values in by_bench.values())
