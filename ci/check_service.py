"""Gate CI on the execution service's behavioural contract.

Usage::

    PYTHONPATH=src python ci/check_service.py

Starts the full service stack (scheduler + asyncio HTTP server) on a
background thread with a fresh manifest store and drives it over real
TCP, asserting the guarantees ``docs/SERVICE.md`` promises:

1. **Warm byte-identity** - the second identical request is a cache
   hit whose manifest document and shared-section fingerprint equal
   the cold run's, byte for byte.
2. **Mixed concurrent load** - 4 clients submitting an interleaved
   cold/warm stream see zero transport errors, all-200 responses, and
   exactly one simulation per unique seed.
3. **Rate limiting** - a tenant over its token-bucket burst receives
   429 with a positive ``retry_after_s`` while other tenants proceed.
4. **Worker-death survival** - SIGKILLing a pool worker mid-job
   rebuilds the pool and every in-flight session is still answered
   (retried, not dropped).

Complements ``ci/check_perf.py`` + ``ci/service_baseline.json`` (the
warm-vs-cold requests/sec ratio gate): that one proves the cache is
fast, this one proves it is correct under concurrency and chaos.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
import threading
import time


SLOW_SOURCE = """
int main(void) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 20000; i = i + 1) {
        acc = acc + i;
    }
    return acc;
}
"""


def check_warm_byte_identity(port) -> None:
    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", port) as client:
        status, cold = client.submit(
            {"workload": "towers", "engine": "reference", "seed": 1}
        )
        assert status == 200 and cold["cache"] == "miss", cold
        status, warm = client.submit(
            {"workload": "towers", "engine": "reference", "seed": 1}
        )
        assert status == 200 and warm["cache"] == "hit", warm
    assert warm["fingerprint"] == cold["fingerprint"], (
        "warm fingerprint differs from cold")
    assert warm["manifest"] == cold["manifest"], (
        "warm manifest document differs from cold")
    print(f"warm hit byte-identical (fingerprint "
          f"{warm['fingerprint'][:16]}...)")


def check_mixed_load(port) -> None:
    from repro.service.loadgen import job_stream, run_load

    jobs = job_stream(workload="towers", engine="reference",
                      unique=3, repeats=3, seed_base=50)
    report = run_load("127.0.0.1", port, jobs, clients=4)
    assert report.errors == 0, report.render()
    assert set(report.by_status) == {200}, report.render()
    assert report.by_cache.get("miss", 0) == 3, report.render()
    warm = (report.by_cache.get("hit", 0)
            + report.by_cache.get("coalesced", 0))
    assert warm == 6, report.render()
    print(f"mixed load: {report.render()}")


def check_rate_limit() -> None:
    from repro.service.client import ServiceClient
    from repro.service.server import serve_in_thread

    handle = serve_in_thread(store=None, workers=1, rate=0.001, burst=1)
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            status, _ = client.submit(
                {"workload": "towers", "engine": "reference"},
                tenant="noisy",
            )
            assert status == 200, "first request within burst must pass"
            status, doc = client.submit(
                {"workload": "towers", "engine": "reference"},
                tenant="noisy",
            )
            assert status == 429, f"expected 429, got {status}: {doc}"
            assert doc["retry_after_s"] > 0, doc
            status, _ = client.submit(
                {"workload": "towers", "engine": "reference"},
                tenant="calm",
            )
            assert status == 200, "other tenants must be unaffected"
    finally:
        handle.stop()
    print(f"rate limit: 429 with retry_after_s={doc['retry_after_s']}")


def check_worker_death(port, scheduler) -> None:
    from repro.service.loadgen import run_load

    jobs = [
        {"source": SLOW_SOURCE, "engine": "reference", "seed": seed}
        for seed in range(4)
    ]
    report_box: list = []

    def _drive() -> None:
        report_box.append(
            run_load("127.0.0.1", port, jobs, clients=4)
        )

    driver = threading.Thread(target=_drive)
    driver.start()
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        pids = scheduler.worker_pids()
        if pids:
            time.sleep(0.3)  # let jobs reach the workers
            os.kill(pids[0], signal.SIGKILL)
            break
        time.sleep(0.01)
    else:
        raise AssertionError("worker pool never started")
    driver.join(timeout=120)
    assert report_box, "load thread never finished"
    report = report_box[0]
    assert report.errors == 0, report.render()
    assert set(report.by_status) == {200}, (
        f"sessions dropped after worker death: {report.render()}")
    restarts = scheduler.registry.as_dict()[
        "service.pool_restarts"]["value"]
    assert restarts >= 1, "pool was never rebuilt"
    print(f"worker SIGKILL survived: {report.render()} "
          f"(pool_restarts={restarts})")


def main() -> int:
    from repro.service.server import serve_in_thread
    from repro.service.store import ManifestStore

    with tempfile.TemporaryDirectory() as tmp:
        handle = serve_in_thread(
            store=ManifestStore(os.path.join(tmp, "store")),
            workers=2,
            deadline_s=120.0,
        )
        try:
            check_warm_byte_identity(handle.port)
            check_mixed_load(handle.port)
            check_worker_death(handle.port, handle.scheduler)
        finally:
            handle.stop()
    check_rate_limit()
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
