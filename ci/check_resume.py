"""Gate CI on crash-safe fault-campaign resume byte-identity.

Usage::

    python ci/check_resume.py [--injections N] [--kill-after K]

The gate proves the crash/resume contract end to end, with real
process death at both failure layers:

1. **whole-process crash**: launch the campaign CLI as a subprocess
   (2 workers, crash-safe journal), wait until the journal shows at
   least ``--kill-after`` completed trials, then SIGKILL the whole
   process group - the moral equivalent of a machine losing power
   mid-campaign;
2. **resume + dead worker**: resume the journal in-process
   (:func:`repro.faults.distributed.run_distributed_campaign`) with a
   chaos hook that SIGKILLs one live pool worker mid-flight, so the
   supervisor's dead-pool recovery runs inside the gate too;
3. **byte-identity**: the resumed campaign's fingerprint must equal
   the committed uninterrupted-serial fingerprint in
   ``ci/fault_baseline.json``, its manifest must validate against the
   campaign-manifest schema, and the resume counters must show that
   both the resume and the pool restart actually happened.

Any lost trial, double-counted trial, reordered fold, or
non-deterministic re-execution changes the fingerprint and fails.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

BASELINE_PATH = os.path.join(REPO, "ci", "fault_baseline.json")

#: How long to wait for the crash-phase subprocess to make progress.
CRASH_PHASE_TIMEOUT_S = 600.0


def journal_completed(path: str) -> int:
    """Completed-trial count currently visible in the journal at *path*.

    Counts raw newline-terminated lines minus the header - cheap enough
    to poll, and an undercount during a partial write only delays the
    kill by one poll interval.
    """
    try:
        with open(path, "rb") as handle:
            return max(0, sum(1 for line in handle if line.endswith(b"\n")) - 1)
    except FileNotFoundError:
        return 0


def crash_campaign_subprocess(
    journal: str, injections: int, seed: int, kill_after: int
) -> int:
    """Run the campaign CLI until *kill_after* trials land, then SIGKILL.

    Returns the journalled trial count at the moment of the kill.  The
    subprocess runs in its own process group so the kill takes its
    worker pool down with it - nothing survives to keep appending.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.faults.campaign",
            "--seed", str(seed),
            "--injections", str(injections),
            "--workers", "2",
            "--journal", journal,
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.monotonic() + CRASH_PHASE_TIMEOUT_S
    try:
        while True:
            done = journal_completed(journal)
            if done >= kill_after:
                break
            if proc.poll() is not None:
                raise SystemExit(
                    f"campaign subprocess exited (rc {proc.returncode}) after "
                    f"{done} trial(s), before the kill threshold {kill_after}"
                )
            if time.monotonic() > deadline:
                raise SystemExit(
                    f"campaign subprocess made only {done}/{kill_after} "
                    f"trial(s) within {CRASH_PHASE_TIMEOUT_S:.0f}s"
                )
            time.sleep(0.2)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()
    return journal_completed(journal)


def main(argv: list[str] | None = None) -> int:
    """Run the crash/resume gate; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--injections", type=int, default=200,
        help="campaign size; must match ci/fault_baseline.json (default 200)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=60,
        help="SIGKILL the campaign once this many trials are journalled",
    )
    args = parser.parse_args(argv)

    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    if baseline["injections"] != args.injections:
        raise SystemExit(
            f"--injections {args.injections} does not match the baseline's "
            f"{baseline['injections']} - fingerprints would never agree"
        )

    from repro.faults.campaign import CampaignConfig
    from repro.faults.distributed import run_distributed_campaign
    from repro.telemetry.manifest import validate_campaign_manifest

    config = CampaignConfig(
        seed=baseline["seed"],
        injections=baseline["injections"],
        benchmarks=tuple(baseline["benchmarks"]),
    )

    workdir = tempfile.mkdtemp(prefix="check_resume_")
    journal = os.path.join(workdir, "campaign.jsonl")

    print(f"phase 1: crash - journalling to {journal}, "
          f"SIGKILL at >= {args.kill_after} trial(s)")
    survived = crash_campaign_subprocess(
        journal, args.injections, baseline["seed"], args.kill_after
    )
    print(f"  killed campaign process group; journal holds {survived} trial(s)")

    chaos_state = {"killed": False}

    def chaos(done: int, worker_pids: list[int]) -> None:
        """SIGKILL one live pool worker partway through the resume."""
        if chaos_state["killed"] or done < 20 or not worker_pids:
            return
        chaos_state["killed"] = True
        os.kill(worker_pids[0], signal.SIGKILL)
        print(f"  chaos: SIGKILLed worker {worker_pids[0]} "
              f"after {done} resumed-run trial(s)")

    print("phase 2: resume with 2 workers + mid-flight worker kill")
    report = run_distributed_campaign(
        config, workers=2, resume=journal, shards=2, chaos_hook=chaos,
    )
    info = report.resume_info

    failures: list[str] = []
    if report.fingerprint() != baseline["fingerprint"]:
        failures.append(
            "resumed fingerprint differs from the committed serial baseline: "
            f"{report.fingerprint()} != {baseline['fingerprint']}"
        )
    if report.count != args.injections:
        failures.append(
            f"resumed campaign folded {report.count} trial(s), "
            f"expected {args.injections}"
        )
    if info["resumed_trials"] == 0:
        failures.append("no trials were resumed - the crash phase was a no-op")
    if info["resumed_trials"] + info["executed_trials"] != args.injections:
        failures.append(
            f"resumed ({info['resumed_trials']}) + executed "
            f"({info['executed_trials']}) != {args.injections}"
        )
    if chaos_state["killed"] and info["pool_restarts"] < 1:
        failures.append(
            "a worker was SIGKILLed but the supervisor recorded no pool restart"
        )
    if info["infra_errors"]:
        failures.append(
            f"{info['infra_errors']} trial(s) quarantined as INFRA_ERROR - "
            "retries should have absorbed a single worker kill"
        )
    manifest = report.manifest()
    for problem in validate_campaign_manifest(manifest):
        failures.append(f"campaign manifest invalid: {problem}")
    shards = manifest["shards"]
    if shards["count"] != 2 or sum(shards["sizes"]) != args.injections:
        failures.append(f"unexpected shards section: {shards}")

    if failures:
        print("resume gate FAILED:")
        for line in failures:
            print("  " + line)
        return 1
    print(
        f"ok: killed at {survived} trial(s), resumed {info['resumed_trials']}, "
        f"executed {info['executed_trials']}, "
        f"{info['pool_restarts']} pool restart(s), "
        f"{info['retries']} retry(ies); fingerprint matches baseline "
        f"({report.fingerprint()[:16]})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
