"""Gate CI on public-API docstring coverage.

Usage::

    python ci/check_docstrings.py [--write-baseline] [--verbose]

Walks every module under ``src/repro`` with :mod:`ast` and counts the
public definitions that lack a docstring.  *Public* means the module
itself, and every class, function, and method whose name does not start
with an underscore (dunders other than ``__init__`` are skipped;
``__init__`` is exempt too - its contract belongs on the class).
Overloads and trivial ``...``-bodied protocol stubs still count: a
Protocol method's docstring *is* its contract.

The committed baseline (``ci/docstring_baseline.json``) maps module
names to their allowed number of undocumented public definitions.  The
gate is a ratchet:

* a module exceeding its baseline (or any misses in a module absent
  from the baseline) **fails** - new code documents itself;
* a module now *below* its baseline also fails, with a message asking
  for ``--write-baseline`` - so the recorded debt only ever shrinks.

``--write-baseline`` rewrites the baseline from the current tree
(dropping fully documented modules); ``--verbose`` lists every missing
docstring.
"""

from __future__ import annotations

import ast
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
BASELINE_PATH = os.path.join(REPO, "ci", "docstring_baseline.json")


def iter_modules():
    """Yield ``(module_name, path)`` for every module under src/repro."""
    for root, dirs, files in os.walk(os.path.join(SRC, "repro")):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, SRC)
            module = rel[: -len(".py")].replace(os.sep, ".")
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            yield module, path


def is_public(name: str) -> bool:
    if name == "__init__":
        return False
    return not name.startswith("_")


def missing_docstrings(path: str) -> list[str]:
    """Qualified names of public definitions in *path* with no docstring."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not is_public(child.name):
                    continue
                qualname = f"{prefix}{child.name}"
                if ast.get_docstring(child) is None:
                    missing.append(qualname)
                visit(child, qualname + ".")

    visit(tree, "")
    return missing


def collect() -> dict[str, list[str]]:
    """Per-module missing-docstring lists for the whole tree."""
    report: dict[str, list[str]] = {}
    for module, path in iter_modules():
        misses = missing_docstrings(path)
        if misses:
            report[module] = misses
    return report


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    report = collect()
    if "--write-baseline" in args:
        baseline = {module: len(misses) for module, misses in sorted(report.items())}
        with open(BASELINE_PATH, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        total = sum(baseline.values())
        print(f"wrote {BASELINE_PATH}: {len(baseline)} module(s), "
              f"{total} allowed miss(es)")
        return 0

    try:
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        baseline = {}

    failures: list[str] = []
    for module, misses in sorted(report.items()):
        allowed = baseline.get(module, 0)
        if len(misses) > allowed:
            failures.append(
                f"{module}: {len(misses)} undocumented public definition(s), "
                f"baseline allows {allowed}"
            )
            for name in misses:
                failures.append(
                    f"  - {module}.{name}".replace(
                        ".<module>", " (module docstring)"
                    )
                )
    for module, allowed in sorted(baseline.items()):
        actual = len(report.get(module, []))
        if actual < allowed:
            failures.append(
                f"{module}: baseline allows {allowed} miss(es) but only "
                f"{actual} remain - run `python ci/check_docstrings.py "
                "--write-baseline` to ratchet down"
            )

    if "--verbose" in args:
        for module, misses in sorted(report.items()):
            for name in misses:
                print(f"missing: {module}.{name}")

    documented = sum(1 for _ in iter_modules()) - len(report)
    if failures:
        print("docstring coverage gate FAILED:")
        for line in failures:
            print("  " + line)
        return 1
    total_misses = sum(len(m) for m in report.values())
    print(f"ok: docstring coverage holds ({documented} fully documented "
          f"module(s), {total_misses} baselined miss(es))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
