"""Gate CI on engine-vs-engine speedup ratios.

Usage::

    python ci/check_perf.py BENCH_simulator.json [BENCH_batch.json ...] \
        [ci/perf_baseline.json]

Reads one or more pytest-benchmark JSON reports (``pytest
benchmarks/... --benchmark-json BENCH_*.json``) and checks every named
entry in the baseline: each entry divides the mean times of two
benchmarks (``numerator`` over ``denominator``, both names resolved
through the baseline's ``benchmarks`` map, searched across every
report) and fails (exit 1) when the measured ratio has regressed more
than ``tolerance`` (fractional) below the committed ``speedup``.

Arguments are classified by content, not position: a JSON document
whose top-level ``benchmarks`` is an *object* is the baseline (default
``ci/perf_baseline.json``), anything else is a report, so the legacy
two-argument form keeps working.  Baseline names listed under
``optional`` may be absent from every report - their entries are
skipped with a note instead of failing, which is how the numpy-gated
batch benchmarks degrade when the optional dependency is missing.

Absolute times vary wildly across CI hosts; the *ratio* of two
interpreters timed in the same process does not, which is what makes
this check stable enough to gate merges on.
"""

from __future__ import annotations

import json
import sys


def mean_time(reports: list[dict], name: str) -> float | None:
    for report in reports:
        for bench in report.get("benchmarks", ()):
            if bench["name"] == name:
                return float(bench["stats"]["mean"])
    return None


def check_entry(entry: dict, times: dict[str, float | None]) -> str | None:
    """Check one baseline entry; returns a failure message or ``None``."""
    numerator = times[entry["numerator"]]
    denominator = times[entry["denominator"]]
    if numerator is None or denominator is None:
        missing = entry["numerator"] if numerator is None else entry["denominator"]
        print(f"{entry['name']}: skipped (optional benchmark {missing!r} absent)")
        return None
    measured = numerator / denominator
    floor = entry["speedup"] * (1.0 - entry["tolerance"])
    print(
        f"{entry['name']}: {measured:.2f}x "
        f"({entry['numerator']} {numerator * 1e3:.1f}ms / "
        f"{entry['denominator']} {denominator * 1e3:.1f}ms); "
        f"baseline {entry['speedup']:.2f}x, floor {floor:.2f}x"
    )
    if measured < floor:
        return (
            f"{entry['name']} regressed more than {entry['tolerance']:.0%} "
            f"below baseline ({measured:.2f}x < {floor:.2f}x)"
        )
    return None


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    reports: list[dict] = []
    baseline: dict | None = None
    for path in argv:
        with open(path) as handle:
            doc = json.load(handle)
        if isinstance(doc.get("benchmarks"), dict):
            baseline = doc
        else:
            reports.append(doc)
    if baseline is None:
        with open("ci/perf_baseline.json") as handle:
            baseline = json.load(handle)
    if not reports:
        print("error: no benchmark reports given", file=sys.stderr)
        return 2

    optional = set(baseline.get("optional", ()))
    times: dict[str, float | None] = {}
    for engine, bench_name in baseline["benchmarks"].items():
        mean = mean_time(reports, bench_name)
        if mean is None and engine not in optional:
            raise SystemExit(
                f"error: benchmark {bench_name!r} not found in any report"
            )
        times[engine] = mean
    print(f"workload: {baseline['workload']}")
    failures = []
    for entry in baseline["entries"]:
        message = check_entry(entry, times)
        if message is not None:
            failures.append(message)
    for message in failures:
        print(f"FAIL: {message}")
    if failures:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
