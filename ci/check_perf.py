"""Gate CI on engine-vs-engine speedup ratios.

Usage::

    python ci/check_perf.py BENCH_simulator.json [ci/perf_baseline.json]

Reads a pytest-benchmark JSON report (``pytest benchmarks/... \
--benchmark-json BENCH_simulator.json``) and checks every named entry
in the baseline: each entry divides the mean times of two engine
benchmarks (``numerator`` over ``denominator``, both names resolved
through the baseline's ``benchmarks`` map) and fails (exit 1) when the
measured ratio has regressed more than ``tolerance`` (fractional)
below the committed ``speedup``.

Absolute times vary wildly across CI hosts; the *ratio* of two
interpreters timed in the same process does not, which is what makes
this check stable enough to gate merges on.
"""

from __future__ import annotations

import json
import sys


def mean_time(report: dict, name: str) -> float:
    for bench in report.get("benchmarks", ()):
        if bench["name"] == name:
            return float(bench["stats"]["mean"])
    raise SystemExit(f"error: benchmark {name!r} not found in report")


def check_entry(entry: dict, times: dict[str, float]) -> str | None:
    """Check one baseline entry; returns a failure message or ``None``."""
    numerator = times[entry["numerator"]]
    denominator = times[entry["denominator"]]
    measured = numerator / denominator
    floor = entry["speedup"] * (1.0 - entry["tolerance"])
    print(
        f"{entry['name']}: {measured:.2f}x "
        f"({entry['numerator']} {numerator * 1e3:.1f}ms / "
        f"{entry['denominator']} {denominator * 1e3:.1f}ms); "
        f"baseline {entry['speedup']:.2f}x, floor {floor:.2f}x"
    )
    if measured < floor:
        return (
            f"{entry['name']} regressed more than {entry['tolerance']:.0%} "
            f"below baseline ({measured:.2f}x < {floor:.2f}x)"
        )
    return None


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    report_path = argv[0]
    baseline_path = argv[1] if len(argv) > 1 else "ci/perf_baseline.json"
    with open(report_path) as handle:
        report = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)

    times = {
        engine: mean_time(report, bench_name)
        for engine, bench_name in baseline["benchmarks"].items()
    }
    print(f"workload: {baseline['workload']}")
    failures = []
    for entry in baseline["entries"]:
        message = check_entry(entry, times)
        if message is not None:
            failures.append(message)
    for message in failures:
        print(f"FAIL: {message}")
    if failures:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
