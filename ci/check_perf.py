"""Gate CI on the fast engine's speedup over the reference engine.

Usage::

    python ci/check_perf.py BENCH_simulator.json [ci/perf_baseline.json]

Reads a pytest-benchmark JSON report (``pytest benchmarks/... \
--benchmark-json BENCH_simulator.json``), computes the
reference-engine/fast-engine mean-time ratio for the towers workload,
and fails (exit 1) when it has regressed more than ``tolerance``
(fractional, default 0.25) below the committed ``speedup`` baseline.

Absolute times vary wildly across CI hosts; the *ratio* of two
interpreters timed in the same process does not, which is what makes
this check stable enough to gate merges on.
"""

from __future__ import annotations

import json
import sys


def mean_time(report: dict, name: str) -> float:
    for bench in report.get("benchmarks", ()):
        if bench["name"] == name:
            return float(bench["stats"]["mean"])
    raise SystemExit(f"error: benchmark {name!r} not found in report")


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    report_path = argv[0]
    baseline_path = argv[1] if len(argv) > 1 else "ci/perf_baseline.json"
    with open(report_path) as handle:
        report = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)

    reference = mean_time(report, baseline["reference_benchmark"])
    fast = mean_time(report, baseline["fast_benchmark"])
    measured = reference / fast
    floor = baseline["speedup"] * (1.0 - baseline["tolerance"])
    print(
        f"fast-engine speedup on {baseline['workload']}: {measured:.2f}x "
        f"(reference {reference * 1e3:.1f}ms / fast {fast * 1e3:.1f}ms); "
        f"baseline {baseline['speedup']:.2f}x, floor {floor:.2f}x"
    )
    if measured < floor:
        print(
            f"FAIL: speedup regressed more than "
            f"{baseline['tolerance']:.0%} below baseline"
        )
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
