"""Gate CI on run-manifest schema stability and cross-engine identity.

Usage::

    python ci/check_manifest.py [--write]

Runs the ``towers`` benchmark on every execution engine, captures a
:class:`~repro.telemetry.manifest.RunManifest` from each, and checks:

1. every manifest passes :func:`~repro.telemetry.manifest.validate_manifest`;
2. the **shared** sections (``run``/``stats``/``memory``/``campaign``)
   serialize byte-identically across all engines - the manifest's core
   determinism contract;
3. the manifest's key structure (:func:`~repro.telemetry.manifest.schema_paths`)
   matches the committed ``ci/manifest_schema.json``, so schema changes
   are deliberate, reviewed diffs rather than silent drift.

It also runs a small streaming fault campaign and applies the same two
gates to the **campaign manifest** (v2: ``shards``/``resume``/``events``
sections): :func:`~repro.telemetry.manifest.validate_campaign_manifest`
must pass and its key structure must match the schema file's
``campaign_paths``.

A third document gets the same treatment: the **composed multicore
manifest** (``risc1-repro/multicore-manifest/v1``, from
``MulticoreSimulator.manifest()``).  A 2-core scenario runs on two SMP
tiers, the composed fingerprints (which exclude the engine-dependent
``simulation`` section) must agree, and the key structure must match
the schema file's ``multicore_paths``.  Per-core sections live in
lists, which ``schema_paths`` deliberately does not flatten - their
inner shape is already pinned by the run-manifest ``paths``.

``--write`` regenerates ``ci/manifest_schema.json`` from the reference
engine's manifest, the campaign manifest, and the multicore manifest;
commit the result alongside the code change that motivated it.
"""

from __future__ import annotations

import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

SCHEMA_PATH = os.path.join(REPO, "ci", "manifest_schema.json")
WORKLOAD = "towers"
from repro.cpu.engines import default_sweep_engines  # noqa: E402

ENGINES = default_sweep_engines()


def capture(engine: str):
    """Run the gate workload on *engine* and capture its manifest."""
    from repro.workloads import benchmark
    from repro.workloads.cache import compile_cached

    compiled = compile_cached(benchmark(WORKLOAD).source)
    machine = compiled.make_machine(engine=engine)
    machine.run(compiled.program.entry)
    return machine.run_manifest(workload=WORKLOAD, entry=compiled.program.entry)


def capture_campaign() -> dict:
    """A small streaming fault campaign's manifest document.

    Tiny on purpose (schema shape does not depend on trial count), and
    streamed so the gate covers the distributed report's manifest path -
    the one with real ``shards``/``resume`` sections.
    """
    from repro.faults.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(seed=7, injections=6, benchmarks=(WORKLOAD,))
    return run_campaign(config, stream=True, shards=2).manifest()


def capture_multicore() -> dict[str, dict]:
    """Composed multicore manifests from two SMP tiers (2-core run).

    Small on purpose: ``timer_ticks`` exercises the whole composition
    (per-core sections, schedule, device counters, interrupt delivery)
    in a fraction of a second per tier.
    """
    from repro.multicore import run_scenario

    return {
        engine: run_scenario(
            "timer_ticks", num_cores=2, engine=engine
        ).manifest(workload="timer_ticks")
        for engine in ("reference", "fast")
    }


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    from repro.telemetry.manifest import (
        CAMPAIGN_LEAVES,
        schema_paths,
        validate_campaign_manifest,
        validate_manifest,
    )

    manifests = {engine: capture(engine) for engine in ENGINES}

    failures: list[str] = []
    for engine, manifest in manifests.items():
        problems = validate_manifest(manifest.as_dict())
        for problem in problems:
            failures.append(f"{engine}: invalid manifest: {problem}")

    campaign_doc = capture_campaign()
    for problem in validate_campaign_manifest(campaign_doc):
        failures.append(f"campaign: invalid manifest: {problem}")

    multicore_docs = capture_multicore()
    multicore_doc = multicore_docs["reference"]
    from repro.multicore import MULTICORE_SCHEMA

    if multicore_doc.get("schema") != MULTICORE_SCHEMA:
        failures.append(
            f"multicore: unexpected schema tag {multicore_doc.get('schema')!r}"
        )
    composed = {e: d["fingerprint"] for e, d in multicore_docs.items()}
    if len(set(composed.values())) != 1:
        failures.append(
            "multicore: composed fingerprints differ across SMP tiers: "
            + ", ".join(f"{e}={fp[:16]}" for e, fp in sorted(composed.items()))
        )

    shared = {engine: m.shared_json() for engine, m in manifests.items()}
    reference = shared["reference"]
    for engine in ENGINES[1:]:
        if shared[engine] != reference:
            failures.append(
                f"{engine}: shared manifest sections differ from the "
                f"reference engine's (fingerprints "
                f"{manifests[engine].fingerprint()[:16]} vs "
                f"{manifests['reference'].fingerprint()[:16]})"
            )

    paths = schema_paths(manifests["reference"].as_dict())
    campaign_paths = schema_paths(campaign_doc, leaves=CAMPAIGN_LEAVES)
    # Every dict key of the multicore document is schema (the data-keyed
    # shapes all live inside lists, where schema_paths stops anyway).
    multicore_paths = schema_paths(multicore_doc, leaves=frozenset())
    if "--write" in args:
        with open(SCHEMA_PATH, "w") as handle:
            json.dump(
                {
                    "workload": WORKLOAD,
                    "paths": paths,
                    "campaign_paths": campaign_paths,
                    "multicore_paths": multicore_paths,
                },
                handle, indent=2,
            )
            handle.write("\n")
        print(
            f"wrote {SCHEMA_PATH}: {len(paths)} run + "
            f"{len(campaign_paths)} campaign + "
            f"{len(multicore_paths)} multicore schema path(s)"
        )
        return 0

    try:
        with open(SCHEMA_PATH) as handle:
            schema_doc = json.load(handle)
        committed = schema_doc["paths"]
        committed_campaign = schema_doc.get("campaign_paths", [])
        committed_multicore = schema_doc.get("multicore_paths", [])
    except FileNotFoundError:
        failures.append(
            f"{SCHEMA_PATH} missing - run `python ci/check_manifest.py --write`"
        )
        committed = paths
        committed_campaign = campaign_paths
        committed_multicore = multicore_paths
    drift = False
    for label, current, pinned in (
        ("manifest", paths, committed),
        ("campaign-manifest", campaign_paths, committed_campaign),
        ("multicore-manifest", multicore_paths, committed_multicore),
    ):
        added = sorted(set(current) - set(pinned))
        removed = sorted(set(pinned) - set(current))
        for path in added:
            failures.append(f"schema drift: new {label} key {path!r}")
        for path in removed:
            failures.append(f"schema drift: {label} key {path!r} disappeared")
        drift = drift or bool(added or removed)
    if drift:
        failures.append(
            "schema changed - if intentional, run "
            "`python ci/check_manifest.py --write` and commit the diff"
        )

    if failures:
        print("manifest gate FAILED:")
        for line in failures:
            print("  " + line)
        return 1
    print(
        f"ok: {WORKLOAD} manifest valid on {len(ENGINES)} engine(s), shared "
        f"fingerprint {manifests['reference'].fingerprint()[:16]}, "
        f"{len(paths)} run + {len(campaign_paths)} campaign + "
        f"{len(multicore_paths)} multicore schema path(s) stable"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
