"""Gate CI on documentation freshness.

Usage::

    python ci/check_docs.py [--write]

Two pieces of the documentation suite are generated from code and must
never drift from it:

* ``docs/ISA.md`` is the rendered output of
  ``python -m repro.isa.docs`` (the instruction, register, condition,
  alias, and trap tables all come from ``repro.isa`` metadata).
* The lint-catalog table in ``docs/ANALYSIS.md`` — the region between
  the ``lint-catalog:begin`` / ``lint-catalog:end`` markers — is
  ``repro.analysis.lints.catalog_table()`` rendered from
  ``LINT_CATALOG``.
* The MMIO register map in ``docs/MULTICORE.md`` — the region between
  the ``register-map:begin`` / ``register-map:end`` markers — is
  ``repro.multicore.device.register_table()`` rendered from the
  device's ``REGISTERS`` source of truth.

Without flags the script regenerates both in memory, diffs them against
the committed files, and exits 1 on any drift (printing a unified
diff).  ``--write`` rewrites the stale files in place instead; commit
the result.
"""

from __future__ import annotations

import difflib
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

ISA_PATH = os.path.join(REPO, "docs", "ISA.md")
ANALYSIS_PATH = os.path.join(REPO, "docs", "ANALYSIS.md")
MULTICORE_PATH = os.path.join(REPO, "docs", "MULTICORE.md")

BEGIN_MARK = "<!-- lint-catalog:begin"
END_MARK = "<!-- lint-catalog:end -->"
REGMAP_BEGIN = "<!-- register-map:begin"
REGMAP_END = "<!-- register-map:end -->"


def expected_isa() -> str:
    from repro.isa.docs import render_reference

    return render_reference() + "\n"


def _with_region(
    path: str, current: str, begin_mark: str, end_mark: str, generated: str
) -> str:
    """*current* with the marked region replaced by *generated*."""
    begin = current.find(begin_mark)
    end = current.find(end_mark)
    if begin < 0 or end < 0 or end < begin:
        raise SystemExit(
            f"error: {path} is missing the generated-region markers "
            f"({begin_mark} ... {end_mark})"
        )
    # Keep the begin-marker line itself; replace everything between the
    # end of that line and the end marker with the generated text.
    begin_line_end = current.index("\n", begin) + 1
    return current[:begin_line_end] + generated + "\n" + current[end:]


def expected_analysis(current: str) -> str:
    """*current* with the marked lint-catalog region regenerated."""
    from repro.analysis.lints import catalog_table

    return _with_region(
        ANALYSIS_PATH, current, BEGIN_MARK, END_MARK, catalog_table()
    )


def expected_multicore(current: str) -> str:
    """*current* with the marked MMIO register map regenerated."""
    from repro.multicore.device import register_table

    return _with_region(
        MULTICORE_PATH, current, REGMAP_BEGIN, REGMAP_END, register_table()
    )


def check(path: str, expected: str, *, write: bool) -> bool:
    """True when *path* matches *expected* (after ``--write``, always)."""
    with open(path) as handle:
        actual = handle.read()
    if actual == expected:
        print(f"ok: {os.path.relpath(path, REPO)} is fresh")
        return True
    if write:
        with open(path, "w") as handle:
            handle.write(expected)
        print(f"rewrote: {os.path.relpath(path, REPO)}")
        return True
    rel = os.path.relpath(path, REPO)
    print(f"STALE: {rel} does not match its generator")
    sys.stdout.writelines(
        difflib.unified_diff(
            actual.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{rel} (committed)",
            tofile=f"{rel} (generated)",
        )
    )
    return False


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    write = "--write" in args
    with open(ANALYSIS_PATH) as handle:
        analysis_current = handle.read()
    with open(MULTICORE_PATH) as handle:
        multicore_current = handle.read()
    fresh = check(ISA_PATH, expected_isa(), write=write)
    fresh &= check(
        ANALYSIS_PATH, expected_analysis(analysis_current), write=write
    )
    fresh &= check(
        MULTICORE_PATH, expected_multicore(multicore_current), write=write
    )
    if not fresh:
        print("\nrun `python ci/check_docs.py --write` and commit the result")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
